package core

import (
	"context"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cpumodel"
	"repro/internal/histogram"
	"repro/internal/trace"
)

// MultiResult is the merged outcome of profiling several threads. Real
// RDX profiles multithreaded programs with per-thread PMU contexts and
// per-thread debug registers (the hardware is per-core); reuse is
// measured within each thread and the histograms are merged. Reuses
// whose use and reuse happen on different threads are not observed — a
// limitation shared with the real tool, measured by the cross-thread
// test.
type MultiResult struct {
	// Threads holds each thread's individual result, in input order.
	Threads []*Result
	// ReuseDistance and ReuseTime are the weight-merged histograms.
	ReuseDistance *histogram.Histogram
	ReuseTime     *histogram.Histogram
	// Attribution is the weight-merged code-pair breakdown.
	Attribution Attribution

	Accesses   uint64
	Samples    uint64
	ReusePairs uint64
}

// TimeOverhead returns the modelled overhead of the slowest thread
// (threads run concurrently, so the program's wall-clock overhead is
// the maximum per-thread overhead).
func (m *MultiResult) TimeOverhead() float64 {
	worst := 0.0
	for _, r := range m.Threads {
		if oh := r.TimeOverhead(); oh > worst {
			worst = oh
		}
	}
	return worst
}

// threadSeedStride de-correlates per-thread sampling phases: thread i
// profiles under Seed + i*threadSeedStride.
const threadSeedStride = 0x9e3779b9

// ThreadConfig returns the configuration thread i of a multithreaded
// profile runs under: the shared config with the seed offset by the
// thread index. It is the single source of per-thread seed derivation —
// a remote dispatcher (internal/pool) that profiles stream i on another
// machine with ThreadConfig(cfg, i) gets a result bit-identical to the
// local thread's.
func ThreadConfig(cfg Config, i int) Config {
	cfg.Seed += uint64(i) * threadSeedStride
	return cfg
}

// ProfileThreads profiles each stream as one thread of a multithreaded
// program: every thread gets its own simulated core, PMU and debug
// registers (per-thread contexts, as perf_event and ptrace provide), and
// the per-thread histograms are merged into program-level results.
// Threads run concurrently on a worker pool of runtime.GOMAXPROCS(0)
// simulated cores; use ProfileThreadsPool to pick the pool size.
func ProfileThreads(streams []trace.Reader, cfg Config, costs cpumodel.Costs) (*MultiResult, error) {
	return ProfileThreadsPoolContext(context.Background(), streams, cfg, costs, 0)
}

// ProfileThreadsPool is ProfileThreads with an explicit worker-pool
// size: at most `workers` streams are simulated concurrently, the rest
// queue — more streams than cores multiplexes, exactly as an OS
// schedules more threads than hardware contexts. workers <= 0 selects
// runtime.GOMAXPROCS(0). Results are deterministic and independent of
// the pool size: each thread's seed derives from its index alone.
func ProfileThreadsPool(streams []trace.Reader, cfg Config, costs cpumodel.Costs, workers int) (*MultiResult, error) {
	return ProfileThreadsPoolContext(context.Background(), streams, cfg, costs, workers)
}

// ProfileThreadsContext is ProfileThreads honoring ctx: cancellation is
// observed by every worker at batch granularity, so even a profile of
// unbounded streams returns promptly with ctx.Err().
func ProfileThreadsContext(ctx context.Context, streams []trace.Reader, cfg Config, costs cpumodel.Costs) (*MultiResult, error) {
	return ProfileThreadsPoolContext(ctx, streams, cfg, costs, 0)
}

// ProfileThreadsPoolContext is the full-control form every other
// ProfileThreads variant delegates to: explicit context and worker-pool
// size. Results are unaffected by either — cancellation only decides
// whether a result is produced at all.
func ProfileThreadsPoolContext(ctx context.Context, streams []trace.Reader, cfg Config, costs cpumodel.Costs, workers int) (*MultiResult, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("core: ProfileThreads with no streams")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(streams) {
		workers = len(streams)
	}
	results := make([]*Result, len(streams))
	errs := make([]error, len(streams))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				p, err := NewProfiler(ThreadConfig(cfg, i))
				if err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = p.RunContext(ctx, streams[i], costs)
			}
		}()
	}
feed:
	for i := range streams {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: thread %d: %w", i, err)
		}
	}
	// Fan the merge in as a parallel tree reduction; the exact-sum
	// Merger makes this byte-identical to a sequential fold.
	return MergeResultsParallel(results, workers), nil
}

// Merger combines per-thread (or per-shard) results into one
// program-level MultiResult, one result at a time. Locality histograms
// compose exactly across disjoint streams (Yuan et al.'s measurement
// theory), so the merge is an exact weighted sum, not an approximation;
// the merged output depends only on the set of Add calls, never on
// where each Result was produced — a result shipped back from a remote
// backend (wire.ToCore) merges bit-identically to one computed in
// process.
//
// The merge is order-independent: histogram buckets and attribution
// weights accumulate in exact extended-precision sums (see exactSum)
// and are rounded to float64 once, at Result. Any Add order — and any
// Merge tree shape — produces byte-identical aggregates, which is what
// lets ProfileThreads fan the merge out as a parallel tree reduction.
// Only MultiResult.Threads reflects Add order, by contract.
type Merger struct {
	m          *MultiResult
	dist, time histMerge
	pairs      map[PairKey]*pairAgg
	tmp        big.Float // scratch for exactSum.add
	done       bool
}

// histMerge accumulates one histogram's buckets in exact sums.
type histMerge struct {
	buckets []exactSum
	cold    exactSum
	count   uint64
}

func (hm *histMerge) add(h *histogram.Histogram, tmp *big.Float) {
	for len(hm.buckets) < h.NumBuckets() {
		hm.buckets = append(hm.buckets, exactSum{})
	}
	for b := 0; b < h.NumBuckets(); b++ {
		hm.buckets[b].add(h.Weight(b), tmp)
	}
	hm.cold.add(h.Cold(), tmp)
	hm.count += h.Count()
}

func (hm *histMerge) merge(o *histMerge) {
	for len(hm.buckets) < len(o.buckets) {
		hm.buckets = append(hm.buckets, exactSum{})
	}
	for b := range o.buckets {
		hm.buckets[b].addSum(&o.buckets[b])
	}
	hm.cold.addSum(&o.cold)
	hm.count += o.count
}

func (hm *histMerge) histogram() *histogram.Histogram {
	buckets := make([]float64, len(hm.buckets))
	for b := range hm.buckets {
		buckets[b] = hm.buckets[b].float64()
	}
	return histogram.Assemble(buckets, hm.cold.float64(), hm.count)
}

// pairAgg accumulates one code pair's statistics across threads.
type pairAgg struct {
	count            uint64
	weight, distSum  exactSum
	minTime, maxTime uint64
}

// NewMerger returns an empty merger.
func NewMerger() *Merger {
	return &Merger{
		m:     &MultiResult{},
		pairs: make(map[PairKey]*pairAgg),
	}
}

// Add folds one thread's result into the merge. The result is retained
// in MultiResult.Threads in Add order.
func (g *Merger) Add(r *Result) {
	if g.done {
		panic("core: Merger.Add after Result")
	}
	m := g.m
	m.Threads = append(m.Threads, r)
	g.dist.add(r.ReuseDistance, &g.tmp)
	g.time.add(r.ReuseTime, &g.tmp)
	m.Accesses += r.Accesses
	m.Samples += r.Samples
	m.ReusePairs += r.ReusePairs
	for _, p := range r.Attribution {
		a := g.pairs[p.Pair]
		if a == nil {
			a = &pairAgg{minTime: p.MinTime, maxTime: p.MaxTime}
			g.pairs[p.Pair] = a
		}
		a.count += p.Count
		a.weight.add(p.Weight, &g.tmp)
		a.distSum.add(p.Weight*p.MeanDistance, &g.tmp)
		if p.MinTime < a.minTime {
			a.minTime = p.MinTime
		}
		if p.MaxTime > a.maxTime {
			a.maxTime = p.MaxTime
		}
	}
}

// Merge folds another merger's accumulated state into g: o's threads
// are appended after g's, and every exact aggregate combines without
// rounding, so a tree of Merges is byte-identical to a sequential fold
// over the same results. o must not be used afterwards.
func (g *Merger) Merge(o *Merger) {
	if g.done || o.done {
		panic("core: Merger.Merge after Result")
	}
	m := g.m
	m.Threads = append(m.Threads, o.m.Threads...)
	g.dist.merge(&o.dist)
	g.time.merge(&o.time)
	m.Accesses += o.m.Accesses
	m.Samples += o.m.Samples
	m.ReusePairs += o.m.ReusePairs
	for k, oa := range o.pairs {
		a := g.pairs[k]
		if a == nil {
			g.pairs[k] = oa
			continue
		}
		a.count += oa.count
		a.weight.addSum(&oa.weight)
		a.distSum.addSum(&oa.distSum)
		if oa.minTime < a.minTime {
			a.minTime = oa.minTime
		}
		if oa.maxTime > a.maxTime {
			a.maxTime = oa.maxTime
		}
	}
}

// Result finalizes and returns the merged view. The attribution order
// is total (weight desc, then use PC, then reuse PC), so the merged
// result is a pure function of the added results — map iteration order
// cannot leak through. The merger must not be used again.
func (g *Merger) Result() *MultiResult {
	if g.done {
		panic("core: Merger.Result called twice")
	}
	g.done = true
	m := g.m
	m.ReuseDistance = g.dist.histogram()
	m.ReuseTime = g.time.histogram()
	for k, a := range g.pairs {
		w := a.weight.float64()
		ps := PairStat{Pair: k, Count: a.count, Weight: w, MinTime: a.minTime, MaxTime: a.maxTime}
		if w > 0 {
			ps.MeanDistance = a.distSum.float64() / w
		}
		m.Attribution = append(m.Attribution, ps)
	}
	sort.Slice(m.Attribution, func(i, j int) bool {
		if m.Attribution[i].Weight != m.Attribution[j].Weight {
			return m.Attribution[i].Weight > m.Attribution[j].Weight
		}
		if m.Attribution[i].Pair.UsePC != m.Attribution[j].Pair.UsePC {
			return m.Attribution[i].Pair.UsePC < m.Attribution[j].Pair.UsePC
		}
		return m.Attribution[i].Pair.ReusePC < m.Attribution[j].Pair.ReusePC
	})
	return m
}

// MergeResults combines per-thread results into one program-level view:
// NewMerger, Add in order, Result.
func MergeResults(results []*Result) *MultiResult {
	g := NewMerger()
	for _, r := range results {
		g.Add(r)
	}
	return g.Result()
}

// mergeFanInMin is the result count below which a parallel merge tree
// is pure overhead.
const mergeFanInMin = 4

// MergeResultsParallel is MergeResults fanned out as a parallel tree
// reduction: the results split into contiguous chunks folded
// concurrently, and the chunk mergers combine pairwise. Because the
// merge aggregates are exact sums, the output is byte-identical to the
// sequential MergeResults — Threads order included (chunks are
// contiguous and combine left-to-right). workers <= 0 selects
// runtime.GOMAXPROCS(0); with one worker or few results it simply runs
// sequentially.
func MergeResultsParallel(results []*Result, workers int) *MultiResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(results) {
		workers = len(results)
	}
	if workers <= 1 || len(results) < mergeFanInMin {
		return MergeResults(results)
	}
	// Fold phase: one contiguous chunk per worker.
	mergers := make([]*Merger, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(results) * w / workers
		hi := len(results) * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			g := NewMerger()
			for _, r := range results[lo:hi] {
				g.Add(r)
			}
			mergers[w] = g
		}(w, lo, hi)
	}
	wg.Wait()
	// Reduce phase: combine adjacent pairs, halving each level.
	for len(mergers) > 1 {
		next := make([]*Merger, (len(mergers)+1)/2)
		var rw sync.WaitGroup
		for i := 0; i < len(mergers); i += 2 {
			if i+1 == len(mergers) {
				next[i/2] = mergers[i]
				continue
			}
			rw.Add(1)
			go func(i int) {
				defer rw.Done()
				mergers[i].Merge(mergers[i+1])
				next[i/2] = mergers[i]
			}(i)
		}
		rw.Wait()
		mergers = next
	}
	return mergers[0].Result()
}
