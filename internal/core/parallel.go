package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cpumodel"
	"repro/internal/histogram"
	"repro/internal/trace"
)

// MultiResult is the merged outcome of profiling several threads. Real
// RDX profiles multithreaded programs with per-thread PMU contexts and
// per-thread debug registers (the hardware is per-core); reuse is
// measured within each thread and the histograms are merged. Reuses
// whose use and reuse happen on different threads are not observed — a
// limitation shared with the real tool, measured by the cross-thread
// test.
type MultiResult struct {
	// Threads holds each thread's individual result, in input order.
	Threads []*Result
	// ReuseDistance and ReuseTime are the weight-merged histograms.
	ReuseDistance *histogram.Histogram
	ReuseTime     *histogram.Histogram
	// Attribution is the weight-merged code-pair breakdown.
	Attribution Attribution

	Accesses   uint64
	Samples    uint64
	ReusePairs uint64
}

// TimeOverhead returns the modelled overhead of the slowest thread
// (threads run concurrently, so the program's wall-clock overhead is
// the maximum per-thread overhead).
func (m *MultiResult) TimeOverhead() float64 {
	worst := 0.0
	for _, r := range m.Threads {
		if oh := r.TimeOverhead(); oh > worst {
			worst = oh
		}
	}
	return worst
}

// ProfileThreads profiles each stream as one thread of a multithreaded
// program: every thread gets its own simulated core, PMU and debug
// registers (per-thread contexts, as perf_event and ptrace provide), and
// the per-thread histograms are merged into program-level results.
// Threads run concurrently on a worker pool of runtime.GOMAXPROCS(0)
// simulated cores; use ProfileThreadsPool to pick the pool size.
func ProfileThreads(streams []trace.Reader, cfg Config, costs cpumodel.Costs) (*MultiResult, error) {
	return ProfileThreadsPool(streams, cfg, costs, 0)
}

// ProfileThreadsPool is ProfileThreads with an explicit worker-pool
// size: at most `workers` streams are simulated concurrently, the rest
// queue — more streams than cores multiplexes, exactly as an OS
// schedules more threads than hardware contexts. workers <= 0 selects
// runtime.GOMAXPROCS(0). Results are deterministic and independent of
// the pool size: each thread's seed derives from its index alone.
func ProfileThreadsPool(streams []trace.Reader, cfg Config, costs cpumodel.Costs, workers int) (*MultiResult, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("core: ProfileThreads with no streams")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(streams) {
		workers = len(streams)
	}
	results := make([]*Result, len(streams))
	errs := make([]error, len(streams))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				tcfg := cfg
				// De-correlate per-thread sampling phases.
				tcfg.Seed = cfg.Seed + uint64(i)*0x9e3779b9
				p, err := NewProfiler(tcfg)
				if err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = p.Run(streams[i], costs)
			}
		}()
	}
	for i := range streams {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: thread %d: %w", i, err)
		}
	}
	return MergeResults(results), nil
}

// MergeResults combines per-thread results into one program-level view.
func MergeResults(results []*Result) *MultiResult {
	m := &MultiResult{
		Threads:       results,
		ReuseDistance: histogram.New(),
		ReuseTime:     histogram.New(),
	}
	type agg struct {
		count            uint64
		weight, distSum  float64
		minTime, maxTime uint64
	}
	pairs := make(map[PairKey]*agg)
	for _, r := range results {
		m.ReuseDistance.AddHistogram(r.ReuseDistance)
		m.ReuseTime.AddHistogram(r.ReuseTime)
		m.Accesses += r.Accesses
		m.Samples += r.Samples
		m.ReusePairs += r.ReusePairs
		for _, p := range r.Attribution {
			a := pairs[p.Pair]
			if a == nil {
				a = &agg{minTime: p.MinTime, maxTime: p.MaxTime}
				pairs[p.Pair] = a
			}
			a.count += p.Count
			a.weight += p.Weight
			a.distSum += p.Weight * p.MeanDistance
			if p.MinTime < a.minTime {
				a.minTime = p.MinTime
			}
			if p.MaxTime > a.maxTime {
				a.maxTime = p.MaxTime
			}
		}
	}
	for k, a := range pairs {
		ps := PairStat{Pair: k, Count: a.count, Weight: a.weight, MinTime: a.minTime, MaxTime: a.maxTime}
		if a.weight > 0 {
			ps.MeanDistance = a.distSum / a.weight
		}
		m.Attribution = append(m.Attribution, ps)
	}
	sort.Slice(m.Attribution, func(i, j int) bool {
		if m.Attribution[i].Weight != m.Attribution[j].Weight {
			return m.Attribution[i].Weight > m.Attribution[j].Weight
		}
		return m.Attribution[i].Pair.UsePC < m.Attribution[j].Pair.UsePC
	})
	return m
}
