package core

import (
	"reflect"
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/mem"
	"repro/internal/trace"
)

// sameProfile asserts the parts of two results that must be bit-identical
// when they describe the same profiling state: histograms, attribution,
// counters and modelled overhead. StateBytes is excluded — it reports
// allocated capacity, which finalization may grow.
func sameProfile(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.ReuseDistance.Snapshot(), b.ReuseDistance.Snapshot()) {
		t.Errorf("%s: reuse-distance histograms differ", label)
	}
	if !reflect.DeepEqual(a.ReuseTime.Snapshot(), b.ReuseTime.Snapshot()) {
		t.Errorf("%s: reuse-time histograms differ", label)
	}
	if !reflect.DeepEqual(a.Attribution, b.Attribution) {
		t.Errorf("%s: attributions differ", label)
	}
	counters := func(r *Result) [9]uint64 {
		return [9]uint64{r.Accesses, r.Samples, r.ArmedSamples, r.Traps,
			r.ReusePairs, r.ColdSamples, r.Dropped, r.Evicted, r.Duplicates}
	}
	if counters(a) != counters(b) {
		t.Errorf("%s: counters differ: %v vs %v", label, counters(a), counters(b))
	}
	if a.TimeOverhead() != b.TimeOverhead() {
		t.Errorf("%s: overheads differ: %v vs %v", label, a.TimeOverhead(), b.TimeOverhead())
	}
}

// TestSnapshotAtEndMatchesResult: a snapshot taken after the last access
// must be bit-identical to the final Result.
func TestSnapshotAtEndMatchesResult(t *testing.T) {
	cfg := testConfig(300)
	p, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(cpumodel.Default())
	if err := m.Run(trace.ZipfAccess(7, 0, 4096, 1.0, 400000)); err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	res := p.Result()
	sameProfile(t, "snapshot-at-end vs result", snap, res)
}

// TestSnapshotDoesNotPerturb: taking snapshots throughout an incremental
// run must leave the final Result bit-identical to an undisturbed run of
// the same stream, and the snapshots themselves must be monotone in
// accesses with histogram mass tracking the access count.
func TestSnapshotDoesNotPerturb(t *testing.T) {
	const n = 500000
	cfg := testConfig(250)
	stream := func() trace.Reader { return trace.ZipfAccess(3, 0, 8192, 1.0, n) }

	undisturbed := runRDX(t, cfg, stream())

	p, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(cpumodel.Default())
	accs, err := trace.Collect(stream())
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*Result
	const batch = 1000
	for pos := 0; pos < len(accs); pos += batch {
		end := pos + batch
		if end > len(accs) {
			end = len(accs)
		}
		m.Execute(accs[pos:end])
		if (pos/batch)%50 == 49 {
			snaps = append(snaps, p.Snapshot())
		}
	}
	m.Finish()
	res := p.Result()

	sameProfile(t, "snapshotted run vs undisturbed run", res, undisturbed)

	if len(snaps) == 0 {
		t.Fatal("no snapshots taken")
	}
	prev := uint64(0)
	for i, s := range snaps {
		if s.Accesses <= prev || s.Accesses > n {
			t.Fatalf("snapshot %d: accesses=%d (prev %d, total %d)", i, s.Accesses, prev, n)
		}
		prev = s.Accesses
		// Histogram mass is normalized to the access count at snapshot
		// time (within float rounding), so live dashboards see absolute
		// scale, not just shape.
		if s.Samples > 0 {
			total := s.ReuseDistance.Total()
			if total < 0.99*float64(s.Accesses) || total > 1.01*float64(s.Accesses) {
				t.Errorf("snapshot %d: histogram mass %.0f for %d accesses", i, total, s.Accesses)
			}
		}
	}
}

// TestSnapshotRepeatable: two consecutive snapshots with no accesses in
// between are bit-identical (Snapshot reads state, never consumes it).
func TestSnapshotRepeatable(t *testing.T) {
	cfg := testConfig(100)
	p, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(cpumodel.Default())
	m.Execute(mkAccesses(100000, 512))
	s1 := p.Snapshot()
	s2 := p.Snapshot()
	sameProfile(t, "repeated snapshot", s1, s2)
	if s1.StateBytes != s2.StateBytes {
		t.Errorf("StateBytes differ across idle snapshots: %d vs %d", s1.StateBytes, s2.StateBytes)
	}
}

// mkAccesses builds a cyclic access slice for incremental-execution tests.
func mkAccesses(n int, words uint64) []mem.Access {
	accs := make([]mem.Access, n)
	for i := range accs {
		accs[i] = mem.Access{
			Addr: mem.Addr(uint64(i) % words * 8),
			PC:   0x400000,
			Size: 8,
			Kind: mem.Load,
		}
	}
	return accs
}
