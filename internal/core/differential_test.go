package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/trace"
)

// TestBatchedPathBitExact is the engine's contract test: for every
// replacement policy, several seeds and several workload shapes, the
// batched fast path (Machine.Run) and the retained per-access reference
// path (Machine.RunReference) must produce byte-identical Results —
// histograms, counters, attribution, footprint model and cycle account.
func TestBatchedPathBitExact(t *testing.T) {
	const n = 150000
	policies := []ReplacementPolicy{
		ReplaceProbabilistic, ReplaceReservoir, ReplaceAlways, ReplaceNever, ReplaceHybrid,
	}
	streams := map[string]func(seed uint64) trace.Reader{
		"zipf":    func(seed uint64) trace.Reader { return trace.ZipfAccess(seed, 0, 4000, 1.0, n) },
		"cyclic":  func(seed uint64) trace.Reader { return trace.Cyclic(0, 900, n) },
		"pointer": func(seed uint64) trace.Reader { return trace.PointerChase(seed, 0, 2500, n) },
	}
	for _, pol := range policies {
		for seed := uint64(1); seed <= 3; seed++ {
			for name, mk := range streams {
				t.Run(fmt.Sprintf("%v/seed=%d/%s", pol, seed, name), func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.SamplePeriod = 700 // dense sampling: many samples, traps, evictions
					cfg.Replacement = pol
					cfg.Seed = seed
					cfg.Skid = int(seed - 1) // exercise skid 0..2

					pFast, err := NewProfiler(cfg)
					if err != nil {
						t.Fatal(err)
					}
					fast, err := pFast.Run(mk(seed), cpumodel.Default())
					if err != nil {
						t.Fatal(err)
					}

					pRef, err := NewProfiler(cfg)
					if err != nil {
						t.Fatal(err)
					}
					ref, err := pRef.RunReference(mk(seed), cpumodel.Default())
					if err != nil {
						t.Fatal(err)
					}

					if fast.Samples == 0 && cfg.Replacement != ReplaceNever {
						t.Fatal("degenerate run: no samples delivered")
					}
					if !reflect.DeepEqual(fast, ref) {
						t.Errorf("results diverge")
						if !reflect.DeepEqual(fast.ReuseDistance, ref.ReuseDistance) {
							t.Errorf("ReuseDistance histograms differ")
						}
						if !reflect.DeepEqual(fast.ReuseTime, ref.ReuseTime) {
							t.Errorf("ReuseTime histograms differ")
						}
						if !reflect.DeepEqual(fast.Attribution, ref.Attribution) {
							t.Errorf("Attribution differs")
						}
						if !reflect.DeepEqual(fast.Account, ref.Account) {
							t.Errorf("Account differs: fast=%+v ref=%+v", fast.Account, ref.Account)
						}
						t.Errorf("counters: fast={samples:%d traps:%d pairs:%d dropped:%d evicted:%d state:%d} ref={samples:%d traps:%d pairs:%d dropped:%d evicted:%d state:%d}",
							fast.Samples, fast.Traps, fast.ReusePairs, fast.Dropped, fast.Evicted, fast.StateBytes,
							ref.Samples, ref.Traps, ref.ReusePairs, ref.Dropped, ref.Evicted, ref.StateBytes)
					}
				})
			}
		}
	}
}

// TestBatchedPathBitExactFeatherlight repeats the contract at the
// paper's sparse 64K operating point, where the engine spends almost all
// its time in the bulk skip-ahead path.
func TestBatchedPathBitExactFeatherlight(t *testing.T) {
	const n = 2 << 20
	cfg := DefaultConfig() // 64K randomized period
	mk := func() trace.Reader { return trace.ZipfAccess(5, 0, 1<<16, 1.0, n) }

	pFast, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := pFast.Run(mk(), cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	pRef, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pRef.RunReference(mk(), cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	if fast.Samples == 0 {
		t.Fatal("no samples at featherlight period")
	}
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("featherlight results diverge: fast samples=%d traps=%d, ref samples=%d traps=%d",
			fast.Samples, fast.Traps, ref.Samples, ref.Traps)
	}
}
