package core

import (
	"math"
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/exact"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/trace"
)

// testConfig returns a config tuned for the short traces used in unit
// tests: a small sampling period so enough samples land.
func testConfig(period uint64) Config {
	cfg := DefaultConfig()
	cfg.SamplePeriod = period
	return cfg
}

func runRDX(t *testing.T, cfg Config, r trace.Reader) *Result {
	t.Helper()
	p, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(r, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{SamplePeriod: 100, NumWatchpoints: 0, WatchWidth: 8},
		{SamplePeriod: 100, NumWatchpoints: 4, WatchWidth: 3},
		{SamplePeriod: 100, NumWatchpoints: 4, WatchWidth: 8, Skid: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
		if _, err := NewProfiler(cfg); err == nil {
			t.Errorf("NewProfiler accepted config %d", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestReplacementPolicyString(t *testing.T) {
	if ReplaceReservoir.String() != "reservoir" ||
		ReplaceAlways.String() != "always" ||
		ReplaceNever.String() != "never" {
		t.Error("policy names wrong")
	}
}

func TestCyclicReuseTimesExact(t *testing.T) {
	// Cyclic over K words: every reuse time is exactly K. Each sampled
	// watchpoint must measure exactly K.
	const k, n = 128, 200000
	res := runRDX(t, testConfig(1000), trace.Cyclic(0, k, n))
	if res.ReusePairs == 0 {
		t.Fatal("no reuse pairs measured")
	}
	rt := res.ReuseTime
	// All finite weight must sit in the bucket containing K.
	wantBucket := 0
	for b := 0; b < rt.NumBuckets(); b++ {
		if histogram.BucketLow(b) <= k && k <= histogram.BucketHigh(b) {
			wantBucket = b
		}
	}
	if got := rt.Weight(wantBucket); math.Abs(got-rt.TotalFinite()) > 1e-9 {
		t.Errorf("reuse time mass outside bucket of %d: %v of %v", k, got, rt.TotalFinite())
	}
}

func TestCyclicDistanceAccuracy(t *testing.T) {
	const k, n = 128, 200000
	res := runRDX(t, testConfig(1000), trace.Cyclic(0, k, n))
	gt, err := exact.Measure(trace.Cyclic(0, k, n), mem.WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	acc := histogram.Accuracy(res.ReuseDistance, gt.ReuseDistance())
	if acc < 0.95 {
		t.Errorf("cyclic accuracy = %v, want >= 0.95", acc)
	}
}

func TestRandomWorkloadAccuracy(t *testing.T) {
	const blocks, n = 4096, 500000
	mk := func() trace.Reader { return trace.RandomUniform(3, 0, blocks, n) }
	res := runRDX(t, testConfig(500), mk())
	gt, err := exact.Measure(mk(), mem.WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	acc := histogram.Accuracy(res.ReuseDistance, gt.ReuseDistance())
	if acc < 0.90 {
		t.Errorf("random accuracy = %v, want >= 0.90", acc)
	}
}

func TestZipfWorkloadAccuracy(t *testing.T) {
	const blocks, n = 8192, 500000
	mk := func() trace.Reader { return trace.ZipfAccess(9, 0, blocks, 1.0, n) }
	res := runRDX(t, testConfig(500), mk())
	gt, err := exact.Measure(mk(), mem.WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	acc := histogram.Accuracy(res.ReuseDistance, gt.ReuseDistance())
	if acc < 0.85 {
		t.Errorf("zipf accuracy = %v, want >= 0.85", acc)
	}
}

func TestSamplesApproximatelyPeriodic(t *testing.T) {
	const n, period = 1000000, 10000
	res := runRDX(t, testConfig(period), trace.Cyclic(0, 64, n))
	want := float64(n) / period
	if got := float64(res.Samples); got < want*0.8 || got > want*1.2 {
		t.Errorf("samples = %v, want ~%v", got, want)
	}
}

func TestColdSamplesForStreaming(t *testing.T) {
	// A pure one-pass stream never reuses: every armed watchpoint stays
	// cold and the distance histogram must be all-cold.
	res := runRDX(t, testConfig(1000), trace.Sequential(0, 100000, 8))
	if res.ReusePairs != 0 {
		t.Errorf("streaming measured %d reuse pairs", res.ReusePairs)
	}
	if res.ColdSamples == 0 {
		t.Error("streaming produced no cold samples")
	}
	rd := res.ReuseDistance
	if rd.TotalFinite() != 0 {
		t.Errorf("streaming distance histogram has finite mass %v", rd.TotalFinite())
	}
}

func TestWatchpointLimitRespected(t *testing.T) {
	// With period 1 every access is sampled; the profiler must survive
	// register exhaustion via its replacement policy.
	for _, pol := range []ReplacementPolicy{ReplaceReservoir, ReplaceAlways, ReplaceNever} {
		cfg := testConfig(1)
		cfg.RandomizePeriod = false
		cfg.Replacement = pol
		res := runRDX(t, cfg, trace.RandomUniform(1, 0, 1024, 50000))
		switch pol {
		case ReplaceNever:
			if res.Dropped == 0 {
				t.Errorf("%v: no drops under sample storm", pol)
			}
		default:
			if res.Evicted == 0 {
				t.Errorf("%v: no evictions under sample storm", pol)
			}
		}
	}
}

func TestDuplicateBlockSamplesDropped(t *testing.T) {
	// Duplicates arise when the granularity is wider than the watch
	// width: a sample lands on a different word of an already-watched
	// line (the watchpoint covers only the first word, so no trap
	// disarmed it). All but the first concurrent sample for a block must
	// be dropped.
	cfg := testConfig(3)
	cfg.RandomizePeriod = false
	cfg.Granularity = mem.LineGranularity
	res := runRDX(t, cfg, trace.Cyclic(0, 64, 100000)) // 8 lines, word stride
	if res.Duplicates == 0 {
		t.Error("no duplicate samples detected on multi-word-per-line workload")
	}
	if res.Dropped < res.Duplicates {
		t.Errorf("dropped %d < duplicates %d", res.Dropped, res.Duplicates)
	}
}

func TestResultTwicePanics(t *testing.T) {
	p, err := NewProfiler(testConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(trace.Cyclic(0, 8, 1000), cpumodel.Default()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("second Result did not panic")
		}
	}()
	p.Result()
}

func TestOverheadSmallAtFeatherlightPeriod(t *testing.T) {
	cfg := testConfig(64 << 10)
	res := runRDX(t, cfg, trace.Cyclic(0, 4096, 2000000))
	if oh := res.TimeOverhead(); oh > 0.10 {
		t.Errorf("featherlight overhead = %v, want <= 10%%", oh)
	}
	if oh := res.TimeOverhead(); oh <= 0 {
		t.Errorf("overhead = %v, want > 0", oh)
	}
}

func TestOverheadScalesWithPeriod(t *testing.T) {
	run := func(period uint64) float64 {
		res := runRDX(t, testConfig(period), trace.Cyclic(0, 4096, 1000000))
		return res.TimeOverhead()
	}
	fast := run(1 << 10)
	slow := run(64 << 10)
	if fast <= slow {
		t.Errorf("overhead did not grow with sampling rate: %v (1K) vs %v (64K)", fast, slow)
	}
}

func TestMemOverhead(t *testing.T) {
	res := runRDX(t, testConfig(1000), trace.Cyclic(0, 4096, 100000))
	if res.StateBytes == 0 {
		t.Fatal("no state bytes reported")
	}
	app := uint64(100 << 20)
	if got := res.MemOverhead(app); math.Abs(got-float64(res.StateBytes)/float64(app)) > 1e-12 {
		t.Errorf("MemOverhead = %v", got)
	}
	if got := res.MemOverhead(0); got != 0 {
		t.Errorf("MemOverhead(0) = %v", got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	mk := func() trace.Reader { return trace.ZipfAccess(4, 0, 2048, 1.0, 300000) }
	a := runRDX(t, testConfig(777), mk())
	b := runRDX(t, testConfig(777), mk())
	if a.Samples != b.Samples || a.Traps != b.Traps || a.ReusePairs != b.ReusePairs {
		t.Errorf("same-seed runs differ: %+v vs %+v", a, b)
	}
	if acc := histogram.Accuracy(a.ReuseDistance, b.ReuseDistance); acc != 1 {
		t.Errorf("same-seed histograms differ: accuracy %v", acc)
	}
}

func TestSeedChangesSampling(t *testing.T) {
	mk := func() trace.Reader { return trace.ZipfAccess(4, 0, 2048, 1.0, 300000) }
	cfgA := testConfig(777)
	cfgB := testConfig(777)
	cfgB.Seed = 999
	a := runRDX(t, cfgA, mk())
	b := runRDX(t, cfgB, mk())
	if a.Samples == b.Samples && a.Traps == b.Traps && a.ReusePairs == b.ReusePairs {
		t.Log("different seeds produced identical counters (possible but unlikely)")
	}
}

func TestConvertDistancesOff(t *testing.T) {
	const k, n = 512, 300000
	cfg := testConfig(500)
	cfg.ConvertDistances = false
	res := runRDX(t, cfg, trace.Cyclic(0, k, n))
	// Raw mode: ReuseDistance should equal ReuseTime.
	if acc := histogram.Accuracy(res.ReuseDistance, res.ReuseTime); acc != 1 {
		t.Errorf("raw mode distance != time histogram (accuracy %v)", acc)
	}
}

func TestSkidDegradesGracefully(t *testing.T) {
	// With skid, the sampled address is a few accesses late but the
	// pipeline must still produce a usable histogram.
	const k, n = 128, 300000
	cfg := testConfig(1000)
	cfg.Skid = 8
	res := runRDX(t, cfg, trace.Cyclic(0, k, n))
	gt, err := exact.Measure(trace.Cyclic(0, k, n), mem.WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	acc := histogram.Accuracy(res.ReuseDistance, gt.ReuseDistance())
	if acc < 0.90 {
		t.Errorf("skid accuracy = %v, want >= 0.90", acc)
	}
}

func TestLineGranularityExactWhenOneWordPerLine(t *testing.T) {
	// When each line is touched at a single word (line-stride sweeps),
	// watching the sampled word is equivalent to watching the line, so
	// line-granularity RDX must be accurate.
	const lines, laps = 256, 60
	mk := func() trace.Reader {
		return trace.Repeat(laps, func() trace.Reader {
			return trace.Sequential(0, lines, 64) // one word per line
		})
	}
	cfg := testConfig(300)
	cfg.Granularity = mem.LineGranularity
	res := runRDX(t, cfg, mk())
	gt, err := exact.Measure(mk(), mem.LineGranularity)
	if err != nil {
		t.Fatal(err)
	}
	acc := histogram.Accuracy(res.ReuseDistance, gt.ReuseDistance())
	if acc < 0.90 {
		t.Errorf("line-stride line-granularity accuracy = %v, want >= 0.90", acc)
	}
}

func TestLineGranularityWordSweepLimitation(t *testing.T) {
	// Known approximation limit (documented in DESIGN.md, measured by
	// ablation A4): with word-stride sweeps, intra-line reuses never hit
	// the single watched word, so RDX misses the short-distance mass
	// entirely. Pin the failure mode so a behaviour change is noticed.
	const lines, laps = 256, 40
	mk := func() trace.Reader {
		return trace.Cyclic(0, lines*8, lines*8*laps) // 8 words per line
	}
	cfg := testConfig(300)
	cfg.Granularity = mem.LineGranularity
	res := runRDX(t, cfg, mk())
	gt, err := exact.Measure(mk(), mem.LineGranularity)
	if err != nil {
		t.Fatal(err)
	}
	acc := histogram.Accuracy(res.ReuseDistance, gt.ReuseDistance())
	if acc > 0.30 {
		t.Errorf("word-sweep line-granularity accuracy = %v; expected the documented blind spot (< 0.30)", acc)
	}
	// The word-granularity view of the same run is, by contrast, exact.
	cfgW := testConfig(300)
	res = runRDX(t, cfgW, mk())
	gtW, err := exact.Measure(mk(), mem.WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	if acc := histogram.Accuracy(res.ReuseDistance, gtW.ReuseDistance()); acc < 0.90 {
		t.Errorf("word-granularity accuracy on same trace = %v, want >= 0.90", acc)
	}
}

func TestCensoredRedistributionConservesMass(t *testing.T) {
	// Under heavy replacement pressure, the histogram's total mass must
	// still equal the program's access count: censored observations are
	// redistributed, never dropped, and the final normalization scales
	// the retained mass to represent every access.
	cfg := testConfig(100)
	cfg.RandomizePeriod = false
	p, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pointer chase with reuse time >> period*k creates eviction storms.
	res, err := p.Run(trace.PointerChase(3, 0, 200001, 600000), cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted == 0 {
		t.Fatal("expected evictions under pressure")
	}
	for _, h := range []struct {
		name string
		tot  float64
	}{{"time", res.ReuseTime.Total()}, {"distance", res.ReuseDistance.Total()}} {
		if math.Abs(h.tot-float64(res.Accesses))/float64(res.Accesses) > 1e-6 {
			t.Errorf("%s histogram mass = %v, want %d accesses", h.name, h.tot, res.Accesses)
		}
	}
}

func TestCensoredRedistributionRecoversLongReuses(t *testing.T) {
	// Pattern with two reuse populations: a hot word (short reuse) and a
	// big cyclic set (long reuse, heavily censored at small periods).
	// With redistribution the long-reuse mass must survive; without it,
	// the histogram collapses toward the short reuses.
	const big, n = 50000, 1000000
	mk := func() trace.Reader {
		return trace.Limit(trace.Mix(5,
			[]trace.Reader{
				trace.Cyclic(0, 1, n/2),       // hot word, reuse time ~2
				trace.Cyclic(1<<30, big, n/2), // long reuses ~2*big
			},
			[]float64{1, 1}), n)
	}
	gt, err := exact.Measure(mk(), mem.WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	run := func(correct bool) float64 {
		cfg := testConfig(500)
		cfg.BiasCorrection = correct
		res := runRDX(t, cfg, mk())
		return histogram.Accuracy(res.ReuseDistance, gt.ReuseDistance())
	}
	with := run(true)
	without := run(false)
	if with <= without {
		t.Errorf("bias correction did not help: with %v vs without %v", with, without)
	}
	// Pressure here is extreme (reuse time = 400 periods), so absolute
	// accuracy is bounded by the handful of surviving long completions;
	// the redistribution must still recover a usable histogram.
	if with < 0.60 {
		t.Errorf("corrected accuracy = %v, want >= 0.60", with)
	}
}

func TestHybridPolicyKeepsArmingUnderClog(t *testing.T) {
	// A stream whose reuse time dwarfs period*k clogs patient policies.
	// The hybrid express lane must keep arming (and completing short
	// reuses) anyway.
	const n = 500000
	mk := func() trace.Reader {
		return trace.Limit(trace.Mix(11,
			[]trace.Reader{
				trace.Cyclic(0, 100, n/2),                 // short reuses
				trace.PointerChase(5, 1<<40, 150000, n/2), // clogging chase
			},
			[]float64{1, 1}), n)
	}
	run := func(pol ReplacementPolicy) *Result {
		cfg := testConfig(500)
		cfg.Replacement = pol
		return runRDX(t, cfg, mk())
	}
	hybrid := run(ReplaceHybrid)
	never := run(ReplaceNever)
	if hybrid.ArmedSamples <= never.ArmedSamples {
		t.Errorf("hybrid armed %d <= never %d; the express lane should keep arming",
			hybrid.ArmedSamples, never.ArmedSamples)
	}
	if hybrid.ReusePairs <= never.ReusePairs {
		t.Errorf("hybrid completed %d pairs <= never %d", hybrid.ReusePairs, never.ReusePairs)
	}
}

func TestHybridPolicyAccuracy(t *testing.T) {
	const n = 500000
	mk := func() trace.Reader {
		return trace.Limit(trace.Mix(11,
			[]trace.Reader{
				trace.Cyclic(0, 100, n/2),
				trace.Cyclic(1<<40, 20000, n/2),
			},
			[]float64{1, 1}), n)
	}
	gt, err := exact.Measure(mk(), mem.WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(500)
	cfg.Replacement = ReplaceHybrid
	res := runRDX(t, cfg, mk())
	if acc := histogram.Accuracy(res.ReuseDistance, gt.ReuseDistance()); acc < 0.80 {
		t.Errorf("hybrid accuracy = %v, want >= 0.80", acc)
	}
}

func TestStoreOnlySampling(t *testing.T) {
	// Sampling stores only: all armed watchpoints come from store
	// samples, but reuse time is still measured in all accesses.
	const n = 300000
	mk := func() trace.Reader {
		// Stencil has 5 loads + 1 store per point; stores revisit the
		// same word across sweeps.
		return trace.Stencil2D(0, 200, 200, 10)
	}
	cfg := testConfig(200)
	cfg.Event = pmu.StoresOnly
	res := runRDX(t, cfg, trace.Limit(mk(), n))
	if res.Samples == 0 || res.ReusePairs == 0 {
		t.Fatalf("store sampling produced samples=%d pairs=%d", res.Samples, res.ReusePairs)
	}
	// Store samples are 1/6 of accesses; at period 200 over all-access
	// counting we'd see n/200 samples, but store-only counting sees
	// n_store/200.
	wantMax := float64(n) / 6 / 200 * 1.3
	if float64(res.Samples) > wantMax {
		t.Errorf("samples = %d, want <= %v (stores only)", res.Samples, wantMax)
	}
}

func TestPhasedWorkloadProfiles(t *testing.T) {
	// A two-phase program: profiling each phase's segment separately
	// must yield clearly different histograms (the segmented phase
	// profiling workflow of examples/phases).
	full := trace.Concat(
		trace.Cyclic(0, 50, 100000),        // hot phase
		trace.Cyclic(1<<40, 30000, 100000), // big-sweep phase
	)
	resA := runRDX(t, testConfig(200), trace.Limit(full, 100000))
	// full has been partially consumed; the next segment continues it.
	resB := runRDX(t, testConfig(200), trace.Limit(full, 100000))
	if acc := histogram.Accuracy(resA.ReuseDistance, resB.ReuseDistance); acc > 0.5 {
		t.Errorf("phases look identical (accuracy %v); phase structure lost", acc)
	}
	if resA.ReuseDistance.Percentile(0.5) >= resB.ReuseDistance.Percentile(0.5) {
		t.Error("hot phase median distance should be far below big-sweep phase")
	}
}

func TestMarkovWorkloadProfiles(t *testing.T) {
	// RDX over a Markov phase mix: the histogram must contain both
	// phases' reuse populations.
	phases := []trace.MarkovPhase{
		{Name: "hot", New: func() trace.Reader { return trace.Cyclic(0, 50, 1<<30) }, Dwell: 50000},
		{Name: "big", New: func() trace.Reader { return trace.Cyclic(1<<40, 20000, 1<<30) }, Dwell: 50000},
	}
	trans := [][]float64{{0, 1}, {1, 0}}
	res := runRDX(t, testConfig(200), trace.MarkovPhases(5, phases, trans, 400000))
	rd := res.ReuseDistance
	short := rd.Weight(6) + rd.Weight(7) // buckets around distance 49
	long := 0.0
	for b := 11; b < rd.NumBuckets(); b++ { // distances >= 1K
		long += rd.Weight(b)
	}
	if short == 0 || long == 0 {
		t.Errorf("markov mix lost a phase: short=%v long=%v\n%s", short, long, rd)
	}
	// Note: the big phase's distances are underestimated here — the
	// footprint conversion averages over the whole (non-stationary)
	// stream, so within-phase distances blur toward the mixture mean.
	// Segmented profiling (TestPhasedWorkloadProfiles) is the remedy.
}
