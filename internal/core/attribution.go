package core

import (
	"sort"

	"repro/internal/histogram"
	"repro/internal/mem"
)

// PairKey identifies a use→reuse pair of code sites: the program counter
// of the sampled (use) access and of the trapping (reuse) access. This
// is RDX's actionable output — it names the two instructions between
// which the measured locality (or lack of it) happens, with no
// instrumentation: the use PC arrives in the PMU sample and the reuse PC
// in the watchpoint trap frame.
type PairKey struct {
	UsePC   mem.Addr
	ReusePC mem.Addr
}

// PairStat aggregates the reuses carried by one use→reuse code pair.
type PairStat struct {
	Pair PairKey
	// Count is the number of observed reuse pairs.
	Count uint64
	// Weight is the total sample weight (each observation weighted by
	// the sampling period and its censoring correction), i.e. the
	// estimated number of program accesses this pair carries.
	Weight float64
	// MeanDistance is the weighted mean reuse distance of the pair's
	// observations (after footprint conversion).
	MeanDistance float64
	// MinTime and MaxTime bound the observed reuse times.
	MinTime, MaxTime uint64
}

// Attribution is the per-code-pair breakdown of a profile, ordered by
// descending weight (the pairs carrying the most accesses first).
type Attribution []PairStat

// TopWeight returns the first n pairs (all if n exceeds the length).
func (a Attribution) TopWeight(n int) Attribution {
	if n > len(a) {
		n = len(a)
	}
	return a[:n]
}

// WorstLocality returns the n pairs with the largest weighted mean
// distance among pairs carrying at least minWeight — the code pairs a
// performance engineer should look at first.
func (a Attribution) WorstLocality(n int, minWeight float64) Attribution {
	filtered := make(Attribution, 0, len(a))
	for _, p := range a {
		if p.Weight >= minWeight {
			filtered = append(filtered, p)
		}
	}
	sort.Slice(filtered, func(i, j int) bool {
		return filtered[i].MeanDistance > filtered[j].MeanDistance
	})
	if n > len(filtered) {
		n = len(filtered)
	}
	return filtered[:n]
}

// buildAttribution aggregates per-observation records into sorted pair
// statistics. times/weights/pcs run parallel; dist converts a reuse time
// to a distance (identity when conversion is off).
func buildAttribution(times []uint64, weights []float64, pcs []PairKey, dist func(uint64) uint64) Attribution {
	type agg struct {
		count            uint64
		weight           float64
		distSum          float64
		minTime, maxTime uint64
	}
	m := make(map[PairKey]*agg)
	for i, t := range times {
		if i >= len(pcs) {
			break
		}
		a := m[pcs[i]]
		if a == nil {
			a = &agg{minTime: t, maxTime: t}
			m[pcs[i]] = a
		}
		w := weights[i]
		a.count++
		a.weight += w
		a.distSum += w * float64(dist(t))
		if t < a.minTime {
			a.minTime = t
		}
		if t > a.maxTime {
			a.maxTime = t
		}
	}
	out := make(Attribution, 0, len(m))
	for k, a := range m {
		ps := PairStat{
			Pair:    k,
			Count:   a.count,
			Weight:  a.weight,
			MinTime: a.minTime,
			MaxTime: a.maxTime,
		}
		if a.weight > 0 {
			ps.MeanDistance = a.distSum / a.weight
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Pair.UsePC < out[j].Pair.UsePC ||
			(out[i].Pair.UsePC == out[j].Pair.UsePC && out[i].Pair.ReusePC < out[j].Pair.ReusePC)
	})
	return out
}

// histogramForPair rebuilds a distance histogram restricted to one code
// pair, for drill-down reporting.
func histogramForPair(times []uint64, weights []float64, pcs []PairKey, key PairKey, period float64, dist func(uint64) uint64) *histogram.Histogram {
	h := histogram.New()
	for i, t := range times {
		if i < len(pcs) && pcs[i] == key {
			h.Add(dist(t), period*weights[i])
		}
	}
	return h
}
