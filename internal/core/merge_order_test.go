package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/stats"
	"repro/internal/trace"
)

// mergeTestResults builds a heterogeneous set of thread results whose
// histogram and attribution weights are genuinely non-integer floats
// (censoring redistribution, weight scaling), the case where naive
// float64 summation is order-dependent in the last ulp.
func mergeTestResults(t *testing.T, n int) []*Result {
	t.Helper()
	cfg := testConfig(300)
	streams := []trace.Reader{
		trace.ZipfAccess(50, 0, 2048, 1.0, uint64(n)),
		trace.Cyclic(1<<40, 700, uint64(n)),
		trace.ZipfAccess(51, 2<<40, 4096, 1.2, uint64(n)),
		trace.Sequential(3<<40, uint64(n), 8),
		trace.PointerChase(7, 4<<40, 900, uint64(n)),
		trace.ZipfAccess(52, 5<<40, 1024, 0.8, uint64(n/2)),
		trace.Cyclic(6<<40, 90, uint64(n/3)),
		trace.RandomUniform(9, 7<<40, 3000, uint64(n)),
	}
	results := make([]*Result, len(streams))
	for i, s := range streams {
		p, err := NewProfiler(ThreadConfig(cfg, i))
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(s, cpumodel.Default())
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}
	return results
}

// sameAggregates asserts two MultiResults carry byte-identical merged
// aggregates (histograms compared down to float64 bit patterns via
// snapshots, attribution via DeepEqual, plus the integer counters).
// Threads order is deliberately not part of this check — it reflects
// Add order by contract.
func sameAggregates(t *testing.T, label string, got, want *MultiResult) {
	t.Helper()
	if !reflect.DeepEqual(got.ReuseDistance.Snapshot(), want.ReuseDistance.Snapshot()) {
		t.Errorf("%s: reuse-distance histograms differ", label)
	}
	if !reflect.DeepEqual(got.ReuseTime.Snapshot(), want.ReuseTime.Snapshot()) {
		t.Errorf("%s: reuse-time histograms differ", label)
	}
	if !reflect.DeepEqual(got.Attribution, want.Attribution) {
		t.Errorf("%s: attributions differ", label)
	}
	if got.Accesses != want.Accesses || got.Samples != want.Samples || got.ReusePairs != want.ReusePairs {
		t.Errorf("%s: counters differ", label)
	}
	if math.Float64bits(got.TimeOverhead()) != math.Float64bits(want.TimeOverhead()) {
		t.Errorf("%s: time overheads differ", label)
	}
}

// TestMergerAddOrderIndependent is the prerequisite evidence for the
// parallel merge tree: feeding the same results to Merger.Add in
// shuffled orders must produce byte-identical merged aggregates. With
// plain float64 accumulation this fails in the last ulp for weights
// like these; the exact-sum accumulator makes addition associative and
// commutative, so every order rounds to the same bits.
func TestMergerAddOrderIndependent(t *testing.T) {
	results := mergeTestResults(t, 60000)
	want := MergeResults(results)

	rng := stats.NewRNG(424242)
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	for trial := 0; trial < 20; trial++ {
		for i := len(order) - 1; i > 0; i-- {
			j := int(rng.Uint64n(uint64(i + 1)))
			order[i], order[j] = order[j], order[i]
		}
		g := NewMerger()
		for _, idx := range order {
			g.Add(results[idx])
		}
		got := g.Result()
		sameAggregates(t, "shuffled add order", got, want)
		// Threads must still be retained, just in the shuffled order.
		for k, idx := range order {
			if got.Threads[k] != results[idx] {
				t.Fatalf("trial %d: Threads[%d] not the added result", trial, k)
			}
		}
	}
}

// TestMergerTreeShapesIdentical checks Merger.Merge against the
// sequential fold for arbitrary tree shapes: random binary trees over
// the same leaves must all produce byte-identical aggregates, and
// left-to-right trees identical Threads order too.
func TestMergerTreeShapesIdentical(t *testing.T) {
	results := mergeTestResults(t, 60000)
	want := MergeResults(results)

	rng := stats.NewRNG(7)
	for trial := 0; trial < 10; trial++ {
		// One merger per leaf, then combine random adjacent pairs until
		// one remains: a random-shaped, order-preserving reduction tree.
		mergers := make([]*Merger, len(results))
		for i, r := range results {
			mergers[i] = NewMerger()
			mergers[i].Add(r)
		}
		for len(mergers) > 1 {
			i := int(rng.Uint64n(uint64(len(mergers) - 1)))
			mergers[i].Merge(mergers[i+1])
			mergers = append(mergers[:i+1], mergers[i+2:]...)
		}
		got := mergers[0].Result()
		sameAggregates(t, "random merge tree", got, want)
		for i := range want.Threads {
			if got.Threads[i] != want.Threads[i] {
				t.Fatal("adjacent-pair merge tree must preserve Threads order")
			}
		}
	}
}

// TestMergeResultsParallelBitIdentical proves the parallel tree
// reduction is invisible: for every worker count it returns the same
// bytes as the sequential fold, Threads order included.
func TestMergeResultsParallelBitIdentical(t *testing.T) {
	results := mergeTestResults(t, 60000)
	want := MergeResults(results)
	for _, workers := range []int{1, 2, 3, 4, 8, 16} {
		got := MergeResultsParallel(results, workers)
		sameAggregates(t, "parallel merge", got, want)
		if len(got.Threads) != len(want.Threads) {
			t.Fatalf("workers=%d: %d threads, want %d", workers, len(got.Threads), len(want.Threads))
		}
		for i := range want.Threads {
			if got.Threads[i] != want.Threads[i] {
				t.Fatalf("workers=%d: Threads order changed", workers)
			}
		}
	}
}
