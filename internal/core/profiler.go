package core

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/cpu"
	"repro/internal/cpumodel"
	"repro/internal/debugreg"
	"repro/internal/footprint"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/stats"
	"repro/internal/trace"
)

// runtimeFixedBytes models RDX's fixed memory footprint on a real
// system: the perf-event mmap ring buffer, the alternate signal stack
// and the profiler runtime (libmonitor-style preloaded agent). It is the
// dominant term of the paper's single-digit-percent memory overhead,
// since RDX's per-sample state is a few dozen bytes.
const runtimeFixedBytes = 4 << 20

// slotState is RDX's bookkeeping for one armed debug register.
type slotState struct {
	block mem.Addr // watched block (at Config.Granularity)
	usePC mem.Addr // PC of the sampled (use) access
	c0    uint64   // PMU access count captured when the sample arrived
}

// Profiler is one RDX profiling session. Create it with NewProfiler,
// obtain a wired machine via NewMachine, run the program, then call
// Result.
type Profiler struct {
	cfg Config
	rng *stats.RNG

	pmuUnit *pmu.PMU
	drs     *debugreg.File
	machine *cpu.Machine

	slots    []slotState
	seenFull uint64 // samples offered since the register file filled (reservoir clock)

	times       []uint64  // completed reuse-time observations, in accesses
	pcs         []PairKey // use→reuse code pair per completed observation
	censored    []uint64  // elapsed times of watchpoints evicted before reuse
	endCensored []uint64  // elapsed times of watchpoints still armed at end of run
	cold        uint64    // armed watchpoints never re-accessed
	samples     uint64    // PMU samples delivered
	armed       uint64    // samples that armed a watchpoint
	dropped     uint64    // samples dropped (policy or duplicate block)
	evicted     uint64    // armed watchpoints evicted before reuse
	duplicate   uint64    // samples whose block was already watched
	traps       uint64
	finished    bool
}

// NewProfiler validates cfg and returns a fresh profiling session.
func NewProfiler(cfg Config) (*Profiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Profiler{
		cfg:   cfg,
		rng:   stats.NewRNG(cfg.Seed ^ 0xfea7be47), // "featherweight" session salt
		slots: make([]slotState, cfg.NumWatchpoints),
	}
	p.drs = debugreg.NewFile(cfg.NumWatchpoints, p.onTrap)
	p.pmuUnit = pmu.New(pmu.Config{
		Event:     cfg.Event,
		Period:    cfg.SamplePeriod,
		Randomize: cfg.RandomizePeriod,
		Skid:      cfg.Skid,
		Seed:      cfg.Seed,
	}, p.onSample)
	return p, nil
}

// Config returns the configuration the profiler was created with.
func (p *Profiler) Config() Config { return p.cfg }

// NewMachine returns a simulated CPU with this profiler's PMU and debug
// registers attached, charging the given cost model. Each profiler
// drives exactly one machine.
func (p *Profiler) NewMachine(costs cpumodel.Costs) *cpu.Machine {
	p.machine = cpu.New(costs,
		cpu.WithPMU(p.pmuUnit),
		cpu.WithDebugRegisters(p.drs),
	)
	return p.machine
}

// onSample is the PMU overflow handler: it converts the sample into an
// armed watchpoint, applying the replacement policy when the register
// file is full.
func (p *Profiler) onSample(s pmu.Sample) {
	p.samples++
	block := p.cfg.Granularity.Block(s.Access.Addr)

	// A block already under watch would trap on itself-adjacent reuses
	// and double-count; skip such samples (rare at realistic periods).
	for i := 0; i < p.drs.NumSlots(); i++ {
		if p.drs.IsArmed(i) && p.slots[i].block == block {
			p.duplicate++
			p.dropped++
			return
		}
	}

	slot := p.drs.FreeSlot()
	if slot < 0 {
		k := uint64(p.drs.NumSlots())
		switch p.cfg.Replacement {
		case ReplaceNever:
			p.dropped++
			return
		case ReplaceHybrid:
			slot = 0
			p.evict(slot, s.Count)
		case ReplaceProbabilistic:
			// Constant-rate admission: high enough to keep arming
			// throughout the run, low enough that a watchpoint pending
			// for many periods usually survives to its reuse.
			if p.rng.Float64() >= p.cfg.ReplaceProb {
				p.dropped++
				return
			}
			slot = p.rng.Intn(p.drs.NumSlots())
			p.evict(slot, s.Count)
		case ReplaceAlways:
			// Every full-arrival evicts a uniform victim.
			slot = p.rng.Intn(p.drs.NumSlots())
			p.evict(slot, s.Count)
		case ReplaceReservoir:
			// Algorithm R over the stream of samples arriving while
			// full: admit the i-th such sample with probability
			// k/(i+k), evicting a uniform victim. This keeps the armed
			// set a uniform sample of sampled addresses and, because
			// the admission probability decays, lets long-pending
			// watchpoints survive long reuse intervals late in the run.
			p.seenFull++
			if p.rng.Uint64n(p.seenFull+k) >= k {
				p.dropped++
				return
			}
			slot = p.rng.Intn(p.drs.NumSlots())
			p.evict(slot, s.Count)
		}
	}

	// Watch the aligned WatchWidth-byte word containing the sampled
	// address (hardware cannot watch a whole cache line; reuse of the
	// watched word is taken as reuse of its block).
	width := p.cfg.WatchWidth
	if err := p.drs.Arm(slot, s.Access.Addr, width, debugreg.WatchReadWrite, s.Count); err != nil {
		// Unreachable with a validated config; surface loudly in tests.
		panic(fmt.Sprintf("core: arming watchpoint: %v", err))
	}
	p.slots[slot] = slotState{block: block, usePC: s.Access.PC, c0: s.Count}
	p.armed++
}

// evict records the censored observation of an armed slot that is about
// to be replaced: its block was watched for `now − c0` accesses without
// a reuse, so its reuse time is at least that (a right-censored sample
// in survival-analysis terms). Result redistributes this mass over the
// completed observations Kaplan-Meier-style, which removes the bias
// replacement would otherwise introduce against long reuse times.
func (p *Profiler) evict(slot int, now uint64) {
	p.evicted++
	if elapsed := now - p.slots[slot].c0; elapsed > 0 {
		p.censored = append(p.censored, elapsed)
	}
}

// onTrap is the debug-exception handler: the watched word was accessed
// again, so the elapsed PMU count is the sampled block's reuse time.
func (p *Profiler) onTrap(t debugreg.Trap) {
	p.traps++
	st := p.slots[t.Slot]
	// The machine checks watchpoints before ticking the PMU for the
	// triggering access, so Count() excludes it; +1 restores the
	// inclusive "counter read in the SIGTRAP handler" semantics.
	c1 := p.pmuUnit.Count() + 1
	if c1 > st.c0 {
		p.times = append(p.times, c1-st.c0)
		p.pcs = append(p.pcs, PairKey{UsePC: st.usePC, ReusePC: t.Access.PC})
	}
	p.drs.Disarm(t.Slot)
}

// Run profiles an access stream end to end with the given cost model and
// returns the result. It is the one-call convenience wrapper around
// NewMachine + machine.Run + Result, executing on the batched engine.
func (p *Profiler) Run(r trace.Reader, costs cpumodel.Costs) (*Result, error) {
	m := p.NewMachine(costs)
	if err := m.Run(r); err != nil {
		return nil, err
	}
	return p.Result(), nil
}

// RunContext is Run honoring ctx: cancellation is checked at every
// batch boundary, so a profile of an unbounded (or merely long) stream
// returns promptly with ctx.Err() once the context is cancelled or its
// deadline passes. The result is bit-identical to Run's — it drives the
// same engine through the batch-invariant Execute/Finish pair.
func (p *Profiler) RunContext(ctx context.Context, r trace.Reader, costs cpumodel.Costs) (*Result, error) {
	m := p.NewMachine(costs)
	buf := trace.BatchBuf()
	defer trace.ReleaseBatchBuf(buf)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := r.Read(buf)
		if n > 0 {
			m.Execute(buf[:n])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	m.Finish()
	return p.Result(), nil
}

// RunReference is Run on the retained per-access reference loop
// (cpu.Machine.RunReference). The differential tests assert it produces
// results bit-identical to Run for every configuration.
func (p *Profiler) RunReference(r trace.Reader, costs cpumodel.Costs) (*Result, error) {
	m := p.NewMachine(costs)
	if err := m.RunReference(r); err != nil {
		return nil, err
	}
	return p.Result(), nil
}

// Result finalizes the session: still-armed watchpoints become cold
// (never reused) observations, reuse times are expanded into weighted
// histograms, and the footprint model converts times to distances.
// It may be called once. For intermediate results during a live run,
// use Snapshot, which does not finalize.
func (p *Profiler) Result() *Result {
	if p.finished {
		panic("core: Result called twice")
	}
	p.finished = true

	// Still-armed watchpoints never saw a reuse before the run ended:
	// the forward-sampling analogue of a cold (first-touch) access.
	// They double as right-censored observations at the trace boundary
	// — "reuse time at least E_end" — which the redistribution below
	// uses as the data-driven anchor deciding how much eviction-censored
	// mass resolves to cold.
	endCount := p.pmuUnit.Count()
	for i := 0; i < p.drs.NumSlots(); i++ {
		if p.drs.IsArmed(i) {
			p.cold++
			if elapsed := endCount - p.slots[i].c0; elapsed > 0 {
				p.endCensored = append(p.endCensored, elapsed)
			}
			p.drs.Disarm(i)
		}
	}
	return p.buildResult(p.cold, p.endCensored)
}

// Snapshot returns the result the session would report if the program
// ended now, without stopping it: still-armed watchpoints are projected
// to cold/end-censored observations (as Result does) but stay armed, no
// internal state is mutated, and profiling continues unaffected. It may
// be called any number of times — a live profiling service serves
// intermediate reuse-distance histograms this way.
//
// Snapshot must not run concurrently with the machine executing
// accesses: call it from the goroutine driving the machine, between
// Execute batches (or inside a Reader.Read, where the machine is
// quiescent).
func (p *Profiler) Snapshot() *Result {
	cold := p.cold
	endCensored := append([]uint64(nil), p.endCensored...)
	nowCount := p.pmuUnit.Count()
	for i := 0; i < p.drs.NumSlots(); i++ {
		if p.drs.IsArmed(i) {
			cold++
			if elapsed := nowCount - p.slots[i].c0; elapsed > 0 {
				endCensored = append(endCensored, elapsed)
			}
		}
	}
	return p.buildResult(cold, endCensored)
}

// buildResult expands the session's observations into the weighted
// histograms, attribution and overhead accounting of a Result. It reads
// but never mutates profiler state; cold and endCensored are passed
// explicitly because Result and Snapshot project still-armed watchpoints
// differently (permanently vs speculatively).
func (p *Profiler) buildResult(cold uint64, endCensored []uint64) *Result {
	accesses := uint64(0)
	if p.machine != nil {
		accesses = p.machine.Account().Accesses
	}

	// Each completed observation starts with unit weight; censored
	// observations (evicted or end-of-run) redistribute theirs over the
	// observations longer than their censoring point, with the
	// unredistributable remainder reported as cold.
	weights := make([]float64, len(p.times))
	for i := range weights {
		weights[i] = 1
	}
	times := p.times
	var coldWeight float64
	if p.cfg.BiasCorrection {
		coldWeight = redistributeCensored(p.times, p.censored, endCensored, weights)
	} else {
		coldWeight = float64(cold)
	}

	// Normalize total mass to the program's access count: each retained
	// observation nominally represents one sampling period, but samples
	// dropped while the register file was full are unrepresented, so the
	// raw total undershoots. Scaling to the access count keeps
	// per-stream proportions (drops are independent of a sample's own
	// reuse time) and makes histogram mass comparable across threads and
	// runs.
	unitTotal := coldWeight
	for _, w := range weights {
		unitTotal += w
	}
	weightScale := float64(p.cfg.SamplePeriod)
	if unitTotal > 0 && accesses > 0 {
		weightScale = float64(accesses) / unitTotal
	}
	for i := range weights {
		weights[i] *= weightScale
	}
	coldWeight *= weightScale

	timeHist := histogram.New()
	for i, t := range times {
		timeHist.Add(t, weights[i])
	}
	if coldWeight > 0 {
		timeHist.Add(histogram.Infinite, coldWeight)
	}

	est := footprint.NewWeightedEstimator(times, weights, coldWeight, accesses)

	distHist := histogram.New()
	for i, t := range times {
		if p.cfg.ConvertDistances {
			distHist.Add(est.Distance(t), weights[i])
		} else {
			distHist.Add(t, weights[i])
		}
	}
	if coldWeight > 0 {
		distHist.Add(histogram.Infinite, coldWeight)
	}

	dist := func(t uint64) uint64 { return t }
	if p.cfg.ConvertDistances {
		dist = est.Distance
	}

	res := &Result{
		Config:        p.cfg,
		Attribution:   buildAttribution(p.times, weights, p.pcs, dist),
		ReuseTime:     timeHist,
		ReuseDistance: distHist,
		Footprint:     est,
		Accesses:      accesses,
		Samples:       p.samples,
		ArmedSamples:  p.armed,
		Traps:         p.traps,
		ReusePairs:    uint64(len(p.times)),
		ColdSamples:   cold,
		Dropped:       p.dropped,
		Evicted:       p.evicted,
		Duplicates:    p.duplicate,
	}
	if p.machine != nil {
		// Copy the account: the machine's own keeps accruing after a
		// mid-run Snapshot, and a snapshot that a subscriber reads
		// asynchronously (Session.Watch) must be frozen at its boundary.
		acct := *p.machine.Account()
		res.Account = &acct
	}
	res.StateBytes = p.StateBytes()
	return res
}

// StateBytes models RDX's current memory footprint: fixed runtime state
// plus the per-observation logs and per-slot bookkeeping. All four
// observation logs count at their allocated capacity — times, censored
// and endCensored hold 8-byte values, pcs holds 16-byte use→reuse PC
// pairs. It is safe to call mid-run (the profiling service exposes it as
// a per-session gauge), from the goroutine driving the machine.
func (p *Profiler) StateBytes() uint64 {
	perSlot := uint64(len(p.slots)) * 24 // block, usePC, c0
	logs := uint64(cap(p.times)+cap(p.censored)+cap(p.endCensored))*8 +
		uint64(cap(p.pcs))*16
	return runtimeFixedBytes + logs + perSlot
}

// redistributeCensored applies redistribute-to-the-right (the
// Kaplan-Meier estimator in redistribution form, Efron's convention) to
// the eviction-censored observations. The value line holds two kinds of
// observations: completed reuse times (destinations at finite
// distances) and end-of-run censored watchpoints (destinations that
// finally resolve to cold — a sample with no reuse before the end of
// the trace is the forward-sampling analogue of a first-touch). Each
// eviction-censored unit mass at E is spread proportionally over the
// observations of either kind with value greater than E; mass with no
// observation beyond it resolves to cold — nothing was ever seen to
// reuse after that long, and in the streaming programs where this case
// dominates, cold is the truth.
//
// Censoring points are processed in increasing order. Because the
// candidate suffixes {value > E} are nested, every member of a suffix
// has accumulated exactly the multipliers of all earlier censoring
// points, so a single running multiplier gives each redistribution's
// denominator in O((n+c)·log n) total.
//
// It is a pure function of its inputs (weights is the only output
// besides the returned cold weight; censoredIn and endCensored are
// never mutated), so Result and Snapshot can share it.
func redistributeCensored(times, censoredIn, endCensored []uint64, weights []float64) (coldWeight float64) {
	// Combined value line: completed observations (idx >= 0 into
	// weights) and end-censored observations (idx < 0 into endW).
	type obsRef struct {
		v   uint64
		idx int // >= 0: weights[idx]; < 0: endW[-idx-1]
	}
	endW := make([]float64, len(endCensored))
	for i := range endW {
		endW[i] = 1
	}
	line := make([]obsRef, 0, len(times)+len(endCensored))
	for i, t := range times {
		line = append(line, obsRef{v: t, idx: i})
	}
	for i, e := range endCensored {
		line = append(line, obsRef{v: e, idx: -i - 1})
	}
	sort.Slice(line, func(a, b int) bool { return line[a].v < line[b].v })

	censored := append([]uint64(nil), censoredIn...)
	sort.Slice(censored, func(a, b int) bool { return censored[a] < censored[b] })

	// suffixCount(E) = observations (either kind) with value > E.
	suffixCount := func(e uint64) int {
		lo := sort.Search(len(line), func(k int) bool { return line[k].v > e })
		return len(line) - lo
	}

	mult := 1.0
	pos := 0 // next observation (in value order) to finalize
	finalize := func(upTo uint64) {
		for pos < len(line) && line[pos].v <= upTo {
			if i := line[pos].idx; i >= 0 {
				weights[i] *= mult
			} else {
				endW[-i-1] *= mult
			}
			pos++
		}
	}
	for _, e := range censored {
		// Observations at or below e keep the multiplier accumulated so
		// far; later censored mass never reaches them.
		finalize(e)
		base := float64(suffixCount(e))
		if base == 0 {
			coldWeight++
			continue
		}
		mult *= 1 + 1/(mult*base)
	}
	finalize(histogram.Infinite - 1)
	for _, w := range endW {
		coldWeight += w
	}
	return coldWeight
}

// Result is the output of one RDX profiling session.
type Result struct {
	// Config echoes the configuration that produced this result.
	Config Config
	// ReuseTime is the weighted reuse-time histogram (each observation
	// weighted by the sampling period, cold samples in the Inf bucket).
	ReuseTime *histogram.Histogram
	// ReuseDistance is the reuse-distance histogram after footprint
	// conversion (or raw times when ConvertDistances is false).
	ReuseDistance *histogram.Histogram
	// Footprint is the fitted average-footprint model, usable for
	// cache-size what-if analysis.
	Footprint *footprint.Estimator
	// Attribution breaks the profile down by use→reuse code pair,
	// ordered by descending carried weight.
	Attribution Attribution
	// Account is the cycle account of the profiled run (nil when the
	// profiler was driven without a machine).
	Account *cpumodel.Account

	Accesses     uint64 // accesses executed by the program
	Samples      uint64 // PMU samples delivered
	ArmedSamples uint64 // samples that armed a watchpoint
	Traps        uint64 // watchpoint traps delivered
	ReusePairs   uint64 // completed use→reuse measurements
	ColdSamples  uint64 // armed watchpoints never reused
	Dropped      uint64 // samples dropped by policy or duplication
	Evicted      uint64 // watchpoints evicted before their reuse
	Duplicates   uint64 // samples whose block was already watched
	StateBytes   uint64 // modelled profiler memory footprint
}

// TimeOverhead returns the modelled fractional runtime overhead
// (0.05 = 5%), or 0 if no machine account is attached.
func (r *Result) TimeOverhead() float64 {
	if r.Account == nil {
		return 0
	}
	return r.Account.Overhead()
}

// MemOverhead returns the modelled memory overhead relative to the
// profiled application's footprint in bytes.
func (r *Result) MemOverhead(appFootprintBytes uint64) float64 {
	if appFootprintBytes == 0 {
		return 0
	}
	return float64(r.StateBytes) / float64(appFootprintBytes)
}
