package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mrc"
)

// BlockBytes returns the byte size of the measurement blocks this
// result's distances are expressed in (its configured granularity).
func (r *Result) BlockBytes() uint64 { return r.Config.Granularity.BlockSize() }

// MissRatioCurve builds the profile's miss-ratio curve via the
// stack-distance identity on the reuse-distance histogram, sampled over
// the sweep (zero Sweep selects defaults covering the observed
// distances).
func (r *Result) MissRatioCurve(sweep mrc.Sweep) *mrc.Curve {
	return mrc.FromHistogram(r.ReuseDistance, r.BlockBytes(), sweep)
}

// MissRatioCurveSmooth builds the miss-ratio curve from the fitted
// average-footprint model instead of the bucketed histogram, so coarse
// histograms still yield smooth curves. Falls back to MissRatioCurve
// when the result carries no footprint model.
func (r *Result) MissRatioCurveSmooth(sweep mrc.Sweep) *mrc.Curve {
	if r.Footprint == nil {
		return r.MissRatioCurve(sweep)
	}
	return mrc.FromFootprint(r.Footprint, r.BlockBytes(), sweep)
}

// PredictCache predicts the profile's miss ratio on one set-associative
// (or, with Ways 0, fully associative) LRU cache.
func (r *Result) PredictCache(cfg cache.Config) (float64, error) {
	return mrc.PredictCache(r.ReuseDistance, cfg, r.BlockBytes())
}

// PredictHierarchy predicts local and global miss ratios for a
// multi-level cache hierarchy (innermost level first).
func (r *Result) PredictHierarchy(specs []cache.LevelSpec) (*mrc.HierarchyPrediction, error) {
	return mrc.PredictLevels(r.ReuseDistance, specs, r.BlockBytes())
}

// WhatIf answers a cache what-if question ("l2.size=2x") against a base
// hierarchy from this profile, without re-profiling: base and modified
// hierarchy predictions plus the profile's miss-ratio curve.
func (r *Result) WhatIf(base []cache.LevelSpec, spec string, sweep mrc.Sweep) (*mrc.Report, error) {
	if r.ReuseDistance == nil {
		return nil, fmt.Errorf("core: result has no reuse-distance histogram")
	}
	return mrc.WhatIf(r.ReuseDistance, r.BlockBytes(), base, spec, sweep)
}
