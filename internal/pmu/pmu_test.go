package pmu

import (
	"testing"

	"repro/internal/mem"
)

func load(addr uint64) mem.Access {
	return mem.Access{Addr: mem.Addr(addr), Size: 8, Kind: mem.Load}
}

func store(addr uint64) mem.Access {
	return mem.Access{Addr: mem.Addr(addr), Size: 8, Kind: mem.Store}
}

func TestCountingMode(t *testing.T) {
	p := New(Config{Event: AllAccesses}, nil)
	for i := 0; i < 100; i++ {
		p.Tick(load(uint64(i)))
	}
	if p.Count() != 100 || p.AllCount() != 100 {
		t.Errorf("count = %d/%d, want 100/100", p.Count(), p.AllCount())
	}
	if p.Samples() != 0 {
		t.Errorf("counting mode delivered %d samples", p.Samples())
	}
}

func TestEventSelect(t *testing.T) {
	p := New(Config{Event: StoresOnly}, nil)
	p.Tick(load(1))
	p.Tick(store(2))
	p.Tick(store(3))
	if p.Count() != 2 {
		t.Errorf("stores counted = %d, want 2", p.Count())
	}
	if p.AllCount() != 3 {
		t.Errorf("all counted = %d, want 3", p.AllCount())
	}

	q := New(Config{Event: LoadsOnly}, nil)
	q.Tick(load(1))
	q.Tick(store(2))
	if q.Count() != 1 {
		t.Errorf("loads counted = %d, want 1", q.Count())
	}
}

func TestEventString(t *testing.T) {
	if AllAccesses.String() != "mem_access" || LoadsOnly.String() != "mem_load" || StoresOnly.String() != "mem_store" {
		t.Error("event names wrong")
	}
}

func TestFixedPeriodSampling(t *testing.T) {
	var samples []Sample
	p := New(Config{Event: AllAccesses, Period: 10}, func(s Sample) {
		samples = append(samples, s)
	})
	for i := 1; i <= 100; i++ {
		p.Tick(load(uint64(i)))
	}
	if len(samples) != 10 {
		t.Fatalf("samples = %d, want 10", len(samples))
	}
	for i, s := range samples {
		wantCount := uint64((i + 1) * 10)
		if s.Count != wantCount {
			t.Errorf("sample %d count = %d, want %d", i, s.Count, wantCount)
		}
		if s.Access.Addr != mem.Addr(wantCount) {
			t.Errorf("sample %d addr = %v, want %v", i, s.Access.Addr, wantCount)
		}
	}
	if p.Samples() != 10 {
		t.Errorf("Samples() = %d", p.Samples())
	}
}

func TestSamplesMatchDeliveredAccess(t *testing.T) {
	// Precise sampling: the delivered address must be the address of the
	// access on which the counter overflowed.
	p := New(Config{Event: AllAccesses, Period: 7}, func(s Sample) {
		if s.Access.Addr != mem.Addr(s.Count*3) {
			t.Errorf("sample addr %v does not match access at count %d", s.Access.Addr, s.Count)
		}
	})
	for i := uint64(1); i <= 1000; i++ {
		p.Tick(load(i * 3))
	}
}

func TestRandomizedPeriodStats(t *testing.T) {
	const period, n = 100, 1000000
	var counts []uint64
	p := New(Config{Event: AllAccesses, Period: period, Randomize: true, Seed: 5}, func(s Sample) {
		counts = append(counts, s.Count)
	})
	for i := 0; i < n; i++ {
		p.Tick(load(uint64(i)))
	}
	if len(counts) < 2 {
		t.Fatal("too few samples")
	}
	// Gaps must lie in [P/2, 3P/2) and average ~P.
	var sum float64
	prev := uint64(0)
	distinct := map[uint64]bool{}
	for _, c := range counts {
		gap := c - prev
		prev = c
		if gap < period/2 || gap >= period*3/2 {
			t.Fatalf("gap %d outside [%d,%d)", gap, period/2, period*3/2)
		}
		distinct[gap] = true
		sum += float64(gap)
	}
	mean := sum / float64(len(counts))
	if mean < period*0.95 || mean > period*1.05 {
		t.Errorf("mean gap = %v, want ~%v", mean, period)
	}
	if len(distinct) < 10 {
		t.Errorf("randomized gaps took only %d distinct values", len(distinct))
	}
}

func TestSkidDelaysDelivery(t *testing.T) {
	const period, skid = 50, 4
	var got []Sample
	p := New(Config{Event: AllAccesses, Period: period, Skid: skid, Seed: 3}, func(s Sample) {
		got = append(got, s)
	})
	for i := uint64(1); i <= 10000; i++ {
		p.Tick(load(i))
	}
	if len(got) < 2 {
		t.Fatal("too few samples")
	}
	// The counter re-arms at delivery, so consecutive deliveries are
	// separated by period plus 0..skid accesses of slippage.
	sawSkid := false
	prev := got[0].Count
	for i := 1; i < len(got); i++ {
		gap := got[i].Count - prev
		prev = got[i].Count
		if gap < period || gap > period+skid {
			t.Errorf("sample %d gap = %d, want in [%d,%d]", i, gap, period, period+skid)
		}
		if gap != period {
			sawSkid = true
		}
	}
	if !sawSkid {
		t.Error("skid configured but every delivery was precise")
	}
}

func TestSampledEventFilteringWithStores(t *testing.T) {
	// When sampling stores, delivered sample addresses must be stores.
	p := New(Config{Event: StoresOnly, Period: 3}, func(s Sample) {
		if s.Access.Kind != mem.Store {
			t.Errorf("sampled a %v while sampling stores", s.Access.Kind)
		}
	})
	for i := uint64(0); i < 1000; i++ {
		if i%2 == 0 {
			p.Tick(load(i))
		} else {
			p.Tick(store(i))
		}
	}
	if p.Samples() == 0 {
		t.Error("no store samples delivered")
	}
}

func TestResetClearsState(t *testing.T) {
	p := New(Config{Event: AllAccesses, Period: 10}, func(Sample) {})
	for i := 0; i < 55; i++ {
		p.Tick(load(uint64(i)))
	}
	p.Reset()
	if p.Count() != 0 || p.AllCount() != 0 || p.Samples() != 0 {
		t.Errorf("Reset left state: %d %d %d", p.Count(), p.AllCount(), p.Samples())
	}
}

func TestPeriodOneSamplesEveryAccess(t *testing.T) {
	n := 0
	p := New(Config{Event: AllAccesses, Period: 1}, func(Sample) { n++ })
	for i := 0; i < 100; i++ {
		p.Tick(load(uint64(i)))
	}
	if n != 100 {
		t.Errorf("period-1 delivered %d samples, want 100", n)
	}
}
