// Package pmu simulates the slice of a commodity CPU's performance
// monitoring unit that RDX consumes: free-running event counters over
// memory accesses, and precise overflow-driven sampling that delivers the
// effective address of the sampled access (the role PEBS/IBS play on real
// hardware).
//
// The simulation reproduces the properties that matter to a sampling
// profiler built on top of it:
//
//   - a counter programmed with period P raises an overflow interrupt on
//     (approximately) every P-th qualifying access;
//   - the period can be randomized around P to avoid lock-step resonance
//     with periodic program behaviour, exactly as production profilers
//     randomize PEBS periods;
//   - samples may exhibit "skid": the reported access can trail the
//     architecturally precise one by a few accesses, modelling imprecise
//     sampling modes (precise mode sets skid to 0).
package pmu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/stats"
)

// EventSelect chooses which accesses a counter counts.
type EventSelect uint8

const (
	// AllAccesses counts every load and store (MEM_UOPS_RETIRED.ALL-style).
	AllAccesses EventSelect = iota
	// LoadsOnly counts retired loads.
	LoadsOnly
	// StoresOnly counts retired stores.
	StoresOnly
)

// String names the event.
func (e EventSelect) String() string {
	switch e {
	case AllAccesses:
		return "mem_access"
	case LoadsOnly:
		return "mem_load"
	case StoresOnly:
		return "mem_store"
	default:
		return fmt.Sprintf("EventSelect(%d)", uint8(e))
	}
}

// Matches reports whether the event counts access a. The simulated core
// uses it to count qualifying accesses when bulk-advancing the counter.
func (e EventSelect) Matches(a mem.Access) bool {
	switch e {
	case LoadsOnly:
		return a.Kind == mem.Load
	case StoresOnly:
		return a.Kind == mem.Store
	default:
		return true
	}
}

// Sample is the payload delivered to an overflow handler: the effective
// address of the sampled access and the value of the access counter at
// delivery time. On real hardware these arrive in the PEBS record and the
// counter MSR respectively.
type Sample struct {
	Access mem.Access
	// Count is the value of the sampling counter's event count when the
	// sample was delivered (i.e., the global index of this access among
	// qualifying accesses).
	Count uint64
}

// OverflowHandler is invoked synchronously when a sampling counter
// overflows. Returning from the handler resumes "execution".
type OverflowHandler func(Sample)

// Config configures a sampling counter.
type Config struct {
	// Event selects which accesses are counted and sampled.
	Event EventSelect
	// Period is the mean number of qualifying events between samples.
	// Zero disables sampling (the counter still counts).
	Period uint64
	// Randomize, when true, draws each inter-sample gap uniformly from
	// [Period/2, 3*Period/2) instead of using the fixed period.
	Randomize bool
	// Skid is the maximum number of accesses by which a delivered sample
	// may trail the access that triggered the overflow. 0 models precise
	// (PEBS-class) sampling.
	Skid int
	// Seed seeds period randomization.
	Seed uint64
}

// PMU is a simulated performance monitoring unit with a single
// programmable sampling counter plus a free-running access counter.
// It is driven by the CPU core calling Tick for every access.
type PMU struct {
	cfg     Config
	rng     *stats.RNG
	handler OverflowHandler

	count     uint64 // qualifying events since Reset
	allCount  uint64 // all accesses since Reset
	toNext    uint64 // qualifying events remaining until next overflow
	samples   uint64
	skidLeft  int  // pending skid countdown, -1 if no sample pending
	skidArmed bool // an overflow happened, waiting out the skid
}

// New returns a PMU with the given configuration. The overflow handler
// may be nil (counting mode).
func New(cfg Config, handler OverflowHandler) *PMU {
	p := &PMU{cfg: cfg, rng: stats.NewRNG(cfg.Seed), handler: handler}
	p.Reset()
	return p
}

// Reset clears counters and re-arms the first sampling interval.
func (p *PMU) Reset() {
	p.count = 0
	p.allCount = 0
	p.samples = 0
	p.skidArmed = false
	p.toNext = p.nextGap()
}

func (p *PMU) nextGap() uint64 {
	if p.cfg.Period == 0 {
		return 0
	}
	if !p.cfg.Randomize {
		return p.cfg.Period
	}
	half := p.cfg.Period / 2
	if half == 0 {
		return 1
	}
	return half + p.rng.Uint64n(p.cfg.Period)
}

// Tick advances the PMU by one executed access. It returns true if an
// overflow sample was delivered during this tick (used by the core for
// interrupt cost accounting).
func (p *PMU) Tick(a mem.Access) bool {
	p.allCount++
	if !p.cfg.Event.Matches(a) {
		return false
	}
	p.count++

	if p.skidArmed {
		// A pending overflow is skidding; deliver once the countdown
		// reaches this access.
		p.skidLeft--
		if p.skidLeft > 0 {
			return false
		}
		p.deliver(a)
		return true
	}

	if p.cfg.Period == 0 || p.handler == nil {
		return false
	}
	p.toNext--
	if p.toNext > 0 {
		return false
	}
	// Overflow on this access.
	if p.cfg.Skid > 0 {
		p.skidArmed = true
		p.skidLeft = int(p.rng.Uint64n(uint64(p.cfg.Skid) + 1))
		if p.skidLeft == 0 {
			p.deliver(a)
			return true
		}
		return false
	}
	p.deliver(a)
	return true
}

// NoOverflow is the Headroom value of a counter that can never deliver a
// sample (counting mode, or no handler attached).
const NoOverflow = ^uint64(0)

// Headroom returns how many further qualifying events the PMU can absorb
// without delivering a sample: the (Headroom+1)-th qualifying event from
// now is the one that overflows (or completes the pending skid). It
// returns NoOverflow when no delivery can ever happen. The simulated core
// uses this to bulk-advance the counter over event-free stretches.
func (p *PMU) Headroom() uint64 {
	if p.skidArmed {
		// Tick delivers when the decremented countdown reaches zero, so
		// skidLeft-1 more qualifying events are free. skidLeft >= 1 holds
		// whenever skidArmed (a zero draw delivers immediately).
		return uint64(p.skidLeft - 1)
	}
	if p.cfg.Period == 0 || p.handler == nil {
		return NoOverflow
	}
	return p.toNext - 1
}

// Advance bulk-applies `all` accesses of which `qual` qualify for the
// configured event, without delivering any sample. It is the batched
// equivalent of `all` Tick calls that all return false, and requires
// qual <= Headroom(); violating the invariant would silently skip an
// overflow, so it panics.
func (p *PMU) Advance(all, qual uint64) {
	if qual > p.Headroom() {
		panic(fmt.Sprintf("pmu: Advance(%d qualifying) exceeds headroom %d", qual, p.Headroom()))
	}
	p.allCount += all
	p.count += qual
	if p.skidArmed {
		p.skidLeft -= int(qual)
	} else if p.cfg.Period != 0 && p.handler != nil {
		p.toNext -= qual
	}
}

func (p *PMU) deliver(a mem.Access) {
	p.skidArmed = false
	p.samples++
	p.toNext = p.nextGap()
	p.handler(Sample{Access: a, Count: p.count})
}

// State is the complete mutable state of a PMU, exported for lossless
// checkpoint/restore of a profiling session. A PMU created with the same
// Config and restored from a State continues the exact event sequence —
// counter values, overflow positions and period-randomization draws — of
// the captured unit.
type State struct {
	Count     uint64
	AllCount  uint64
	ToNext    uint64
	Samples   uint64
	SkidLeft  int64
	SkidArmed bool
	RNG       uint64
}

// State captures the PMU's mutable state. The PMU must be quiescent (no
// Tick in flight).
func (p *PMU) State() State {
	return State{
		Count:     p.count,
		AllCount:  p.allCount,
		ToNext:    p.toNext,
		Samples:   p.samples,
		SkidLeft:  int64(p.skidLeft),
		SkidArmed: p.skidArmed,
		RNG:       p.rng.State(),
	}
}

// SetState overwrites the PMU's mutable state with a previously captured
// one. The configuration is not part of State and must match the one the
// state was captured under.
func (p *PMU) SetState(s State) {
	p.count = s.Count
	p.allCount = s.AllCount
	p.toNext = s.ToNext
	p.samples = s.Samples
	p.skidLeft = int(s.SkidLeft)
	p.skidArmed = s.SkidArmed
	p.rng.Seed(s.RNG)
}

// Count returns the number of qualifying events observed.
func (p *PMU) Count() uint64 { return p.count }

// AllCount returns the number of accesses of any kind observed.
func (p *PMU) AllCount() uint64 { return p.allCount }

// Samples returns the number of overflow samples delivered.
func (p *PMU) Samples() uint64 { return p.samples }

// Config returns the active configuration.
func (p *PMU) Config() Config { return p.cfg }
