package mrc

import (
	"math"
	"testing"
)

func TestCurveAtInterpolation(t *testing.T) {
	c := &Curve{BlockBytes: 64}
	c.appendClamped(4, 0.8)
	c.appendClamped(16, 0.4)
	if got := c.At(0); got != 1 {
		t.Errorf("At(0) = %v, want 1", got)
	}
	if got := c.At(2); got != 0.8 {
		t.Errorf("At below range = %v, want first point", got)
	}
	if got := c.At(64); got != 0.4 {
		t.Errorf("At above range = %v, want last point", got)
	}
	if got := c.At(8); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("At(8) = %v, want log-midpoint 0.6", got)
	}
	empty := &Curve{}
	if got := empty.At(10); got != 0 {
		t.Errorf("empty curve At = %v", got)
	}
}

func TestSweepSizes(t *testing.T) {
	s := Sweep{MinLines: 1, MaxLines: 1024, PointsPerDoubling: 2}.fill(0)
	sizes := s.sizes()
	if sizes[0] != 1 || sizes[len(sizes)-1] != 1024 {
		t.Fatalf("sweep endpoints: %v", sizes)
	}
	seen := map[uint64]bool{}
	for i, v := range sizes {
		if seen[v] {
			t.Fatalf("duplicate size %d", v)
		}
		seen[v] = true
		if i > 0 && v <= sizes[i-1] {
			t.Fatalf("sizes not increasing: %v", sizes)
		}
	}
	for _, pow := range []uint64{1, 2, 4, 256, 1024} {
		if !seen[pow] {
			t.Errorf("power-of-two capacity %d missing from sweep %v", pow, sizes)
		}
	}
}

// TestAppendClampedMonotone pins the construction invariant directly:
// out-of-order ratios are clamped to the running minimum and NaN/out-of-
// range inputs are normalized.
func TestAppendClampedMonotone(t *testing.T) {
	c := &Curve{BlockBytes: 1}
	c.appendClamped(1, 1.5)
	c.appendClamped(2, 0.5)
	c.appendClamped(4, 0.7) // must clamp to 0.5
	c.appendClamped(8, math.NaN())
	want := []float64{1, 0.5, 0.5, 0}
	for i, p := range c.Points {
		if p.MissRatio != want[i] {
			t.Errorf("point %d = %v, want %v", i, p.MissRatio, want[i])
		}
	}
}
