package mrc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/histogram"
)

// ParseSpec parses a what-if specification against a base hierarchy and
// returns the modified hierarchy. A spec is a comma-separated list of
// clauses of the form
//
//	level.param=value
//
// where level names a hierarchy level case-insensitively ("l2", "LLC"),
// param is one of
//
//	size — capacity: a multiplier ("2x", "0.5x") or an absolute size
//	       with an optional binary suffix ("256KiB", "1MiB", "64KB",
//	       "4096")
//	ways — associativity: an integer, or "full"/"fa" for fully
//	       associative
//	line — line size in bytes
//
// e.g. "l2.size=2x" or "l1.ways=4,llc.size=64MiB". The base is not
// mutated; every modified level is re-validated.
func ParseSpec(spec string, base []cache.LevelSpec) ([]cache.LevelSpec, error) {
	out := make([]cache.LevelSpec, len(base))
	copy(out, base)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("mrc: empty what-if spec")
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		eq := strings.IndexByte(clause, '=')
		if eq < 0 {
			return nil, fmt.Errorf("mrc: clause %q: want level.param=value", clause)
		}
		key, val := strings.TrimSpace(clause[:eq]), strings.TrimSpace(clause[eq+1:])
		dot := strings.IndexByte(key, '.')
		if dot < 0 {
			return nil, fmt.Errorf("mrc: clause %q: want level.param=value", clause)
		}
		level, param := key[:dot], key[dot+1:]
		idx := -1
		for i, s := range out {
			if strings.EqualFold(s.Name, level) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("mrc: clause %q: no hierarchy level named %q (have %s)",
				clause, level, levelNames(base))
		}
		cfg := out[idx].Config
		switch strings.ToLower(param) {
		case "size":
			sz, err := parseSize(val, cfg.SizeBytes)
			if err != nil {
				return nil, fmt.Errorf("mrc: clause %q: %w", clause, err)
			}
			cfg.SizeBytes = sz
		case "ways":
			switch strings.ToLower(val) {
			case "full", "fa":
				cfg.Ways = 0
			default:
				w, err := strconv.Atoi(val)
				if err != nil || w < 0 {
					return nil, fmt.Errorf("mrc: clause %q: ways must be a non-negative integer or \"full\"", clause)
				}
				cfg.Ways = w
			}
		case "line":
			lb, err := strconv.ParseUint(val, 10, 64)
			if err != nil || lb == 0 {
				return nil, fmt.Errorf("mrc: clause %q: line must be a positive byte count", clause)
			}
			cfg.LineBytes = lb
		default:
			return nil, fmt.Errorf("mrc: clause %q: unknown parameter %q (want size, ways or line)", clause, param)
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("mrc: clause %q: %w", clause, err)
		}
		out[idx].Config = cfg
	}
	return out, nil
}

func levelNames(specs []cache.LevelSpec) string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}

// parseSize parses a capacity value: "Nx" multiplies the base (N may be
// fractional), otherwise an absolute size with an optional KiB/MiB/GiB
// (or KB/MB/GB, treated as binary) suffix.
func parseSize(val string, base uint64) (uint64, error) {
	v := strings.ToLower(strings.TrimSpace(val))
	if strings.HasSuffix(v, "x") {
		f, err := strconv.ParseFloat(v[:len(v)-1], 64)
		if err != nil || f <= 0 {
			return 0, fmt.Errorf("bad size multiplier %q", val)
		}
		return uint64(f * float64(base)), nil
	}
	mult := uint64(1)
	for _, s := range []struct {
		suffix string
		mult   uint64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1 << 10}, {"mb", 1 << 20}, {"gb", 1 << 30},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30},
		{"b", 1},
	} {
		if strings.HasSuffix(v, s.suffix) {
			v = strings.TrimSpace(v[:len(v)-len(s.suffix)])
			mult = s.mult
			break
		}
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("bad size %q", val)
	}
	return n * mult, nil
}

// Report is the answer to one what-if question: the base and modified
// hierarchy predictions side by side, plus the underlying miss-ratio
// curve the capacities were read from.
type Report struct {
	// BlockBytes is the measurement granularity of the source histogram.
	BlockBytes uint64 `json:"block_bytes"`
	// Spec is the what-if specification the report answers.
	Spec string `json:"spec"`
	// Base and Modified are the hierarchy predictions before and after
	// applying the spec.
	Base     *HierarchyPrediction `json:"base"`
	Modified *HierarchyPrediction `json:"modified"`
	// Curve is the fully associative miss-ratio curve of the profile,
	// for context around the predicted points.
	Curve *Curve `json:"curve"`
}

// WhatIf answers a what-if question from a reuse-distance histogram:
// parse the spec against the base hierarchy, predict both hierarchies,
// and attach the profile's miss-ratio curve. A nil/empty sweep uses
// defaults.
func WhatIf(rd *histogram.Histogram, blockBytes uint64, base []cache.LevelSpec, spec string, sweep Sweep) (*Report, error) {
	modified, err := ParseSpec(spec, base)
	if err != nil {
		return nil, err
	}
	bp, err := PredictLevels(rd, base, blockBytes)
	if err != nil {
		return nil, err
	}
	mp, err := PredictLevels(rd, modified, blockBytes)
	if err != nil {
		return nil, err
	}
	return &Report{
		BlockBytes: blockBytes,
		Spec:       spec,
		Base:       bp,
		Modified:   mp,
		Curve:      FromHistogram(rd, blockBytes, sweep),
	}, nil
}

// String renders the report as a side-by-side text comparison.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "what-if: %s\n\n", r.Spec)
	fmt.Fprintf(&sb, "%-6s %14s %10s %14s %10s %9s\n",
		"level", "base size", "base loc%", "new size", "new loc%", "Δglobal")
	for i, b := range r.Base.Levels {
		m := r.Modified.Levels[i]
		fmt.Fprintf(&sb, "%-6s %14d %9.2f%% %14d %9.2f%% %+8.2f%%\n",
			b.Name, b.SizeBytes, 100*b.Local, m.SizeBytes, 100*m.Local,
			100*(m.Global-b.Global))
	}
	return sb.String()
}
