// Black-box differential and property tests; the package is imported
// externally because they drive real profiles through internal/core,
// which itself links the mrc analysis layer into core.Result.
package mrc_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/exact"
	"repro/internal/footprint"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workloads"

	. "repro/internal/mrc"
)

const testN = 200_000

// phasedTrace is a three-phase Markov workload (hot zipf set, cold
// sequential scan, clustered object walk) used by the integration tests.
func phasedTrace(seed, n uint64) trace.Reader {
	phases := []trace.MarkovPhase{
		{Name: "hot", Dwell: 20_000, New: func() trace.Reader {
			return trace.ZipfAccess(seed, 0, 1<<12, 1.1, n)
		}},
		{Name: "scan", Dwell: 10_000, New: func() trace.Reader {
			return trace.Sequential(1<<22, n, 64)
		}},
		{Name: "cluster", Dwell: 15_000, New: func() trace.Reader {
			return trace.SpatialCluster(seed+1, 1<<23, 1024, 32, 8, n)
		}},
	}
	tr := [][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	return trace.MarkovPhases(seed, phases, tr, n)
}

// generators is the cross-generator test matrix: synthetic patterns,
// a phased composite, and two workload-suite members.
func generators(t *testing.T) map[string]func() trace.Reader {
	t.Helper()
	gens := map[string]func() trace.Reader{
		"zipf": func() trace.Reader { return trace.ZipfAccess(7, 0, 1<<15, 0.9, testN) },
		// objSize 40 words = 5 lines: an odd line stride, so objects do
		// not alias into a subset of the cache sets (distance-only
		// models assume uniform set usage; power-of-two-aligned objects
		// would violate it by construction).
		"cluster": func() trace.Reader {
			return trace.SpatialCluster(11, 0, 1536, 40, 16, testN)
		},
		"phased": func() trace.Reader { return phasedTrace(13, testN) },
	}
	for _, name := range []string{"lbm", "mcf"} {
		name := name
		gens[name] = func() trace.Reader {
			r, err := workloads.Build(name, 3, testN)
			if err != nil {
				t.Fatalf("workloads.Build(%s): %v", name, err)
			}
			return r
		}
	}
	return gens
}

func exactLineHistogram(t *testing.T, mk func() trace.Reader) *histogram.Histogram {
	t.Helper()
	gt, err := exact.Measure(mk(), mem.LineGranularity)
	if err != nil {
		t.Fatal(err)
	}
	return gt.ReuseDistance()
}

// checkCurve asserts the package-wide curve invariants: non-empty,
// strictly increasing capacities, ratios bounded in [0,1] and monotone
// non-increasing.
func checkCurve(t *testing.T, label string, c *Curve) {
	t.Helper()
	if len(c.Points) == 0 {
		t.Fatalf("%s: empty curve", label)
	}
	for i, p := range c.Points {
		if p.MissRatio < 0 || p.MissRatio > 1 || math.IsNaN(p.MissRatio) {
			t.Fatalf("%s: point %d ratio %v out of [0,1]", label, i, p.MissRatio)
		}
		if p.Bytes != p.Lines*c.BlockBytes {
			t.Fatalf("%s: point %d bytes %d != lines %d * block %d", label, i, p.Bytes, p.Lines, c.BlockBytes)
		}
		if i == 0 {
			continue
		}
		if p.Lines <= c.Points[i-1].Lines {
			t.Fatalf("%s: capacities not increasing at %d: %d <= %d", label, i, p.Lines, c.Points[i-1].Lines)
		}
		if p.MissRatio > c.Points[i-1].MissRatio+1e-12 {
			t.Fatalf("%s: ratios not monotone at %d: %v > %v", label, i, p.MissRatio, c.Points[i-1].MissRatio)
		}
	}
}

// TestCurvePropertiesAllPoliciesAndGenerators is the satellite property
// test: every curve the package produces — histogram- or
// footprint-based, from sampled profiles under every replacement policy
// and from exact profiles of every generator — is monotone
// non-increasing in cache size and bounded in [0,1].
func TestCurvePropertiesAllPoliciesAndGenerators(t *testing.T) {
	policies := []core.ReplacementPolicy{
		core.ReplaceProbabilistic, core.ReplaceReservoir, core.ReplaceAlways,
		core.ReplaceNever, core.ReplaceHybrid,
	}
	for _, pol := range policies {
		cfg := core.DefaultConfig()
		cfg.SamplePeriod = 512
		cfg.Granularity = mem.LineGranularity
		cfg.Replacement = pol
		p, err := core.NewProfiler(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(trace.ZipfAccess(5, 0, 1<<14, 1.0, testN), cpumodel.Default())
		if err != nil {
			t.Fatal(err)
		}
		label := "policy=" + pol.String()
		checkCurve(t, label+"/hist", FromHistogram(res.ReuseDistance, 64, Sweep{}))
		checkCurve(t, label+"/footprint", FromFootprint(res.Footprint, 64, Sweep{MaxLines: 1 << 20}))
	}
	for name, mk := range generators(t) {
		rd := exactLineHistogram(t, mk)
		checkCurve(t, name+"/hist", FromHistogram(rd, 64, Sweep{}))
		checkCurve(t, name+"/hist-dense", FromHistogram(rd, 64, Sweep{PointsPerDoubling: 4}))
	}
}

// TestStackMissRatioMatchesLegacy pins the bit-identity contract behind
// the deprecated rdx.PredictMissRatio wrapper: StackMissRatio is the
// same function as cache.PredictMissRatio at every capacity.
func TestStackMissRatioMatchesLegacy(t *testing.T) {
	rd := exactLineHistogram(t, func() trace.Reader {
		return trace.ZipfAccess(9, 0, 1<<14, 0.8, 100_000)
	})
	caps := []uint64{0, 1, 2, 3, 7, 16, 100, 1024, 1 << 20, 1 << 40}
	for _, c := range caps {
		if got, want := StackMissRatio(rd, c), cache.PredictMissRatio(rd, c); got != want {
			t.Errorf("capacity %d: StackMissRatio %v != cache.PredictMissRatio %v", c, got, want)
		}
	}
}

// TestCurveFullyAssocDifferential validates the fully associative curve
// against the reference simulator at bucket-aligned capacities, within
// the committed TolFullyAssoc, on every generator.
func TestCurveFullyAssocDifferential(t *testing.T) {
	for name, mk := range generators(t) {
		rd := exactLineHistogram(t, mk)
		curve := FromHistogram(rd, 64, Sweep{})
		for _, lines := range []uint64{16, 64, 256, 1024, 4096} {
			sim, err := cache.Simulate(mk(), cache.Config{SizeBytes: lines * 64, LineBytes: 64, Ways: 0})
			if err != nil {
				t.Fatal(err)
			}
			if pred := curve.At(lines); math.Abs(pred-sim) > TolFullyAssoc {
				t.Errorf("%s @%d lines: predicted %.4f vs simulated %.4f (tol %v)",
					name, lines, pred, sim, TolFullyAssoc)
			}
		}
	}
}

// TestPredictCacheSetAssocDifferential validates the per-set distance
// correction against simulated set-associative caches within
// TolSetAssoc.
func TestPredictCacheSetAssocDifferential(t *testing.T) {
	configs := []cache.Config{
		{SizeBytes: 4 << 10, LineBytes: 64, Ways: 2},
		{SizeBytes: 16 << 10, LineBytes: 64, Ways: 1}, // direct-mapped
		{SizeBytes: 32 << 10, LineBytes: 64, Ways: 4},
		{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8},
		{SizeBytes: 256 << 10, LineBytes: 64, Ways: 16},
	}
	for name, mk := range generators(t) {
		rd := exactLineHistogram(t, mk)
		for _, cfg := range configs {
			sim, err := cache.Simulate(mk(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			pred, err := PredictCache(rd, cfg, 64)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pred-sim) > TolSetAssoc {
				t.Errorf("%s %dKiB/%d-way: predicted %.4f vs simulated %.4f (tol %v)",
					name, cfg.SizeBytes>>10, cfg.Ways, pred, sim, TolSetAssoc)
			}
		}
	}
}

// TestPredictLevelsDifferential is the satellite integration test:
// hierarchy predictions track cache.SimulateHierarchy level by level on
// phased and workload-suite generators, within TolHierarchy. Levels the
// simulation barely exercises (under 2% of accesses arriving) are
// skipped — their simulated local ratios are noise.
func TestPredictLevelsDifferential(t *testing.T) {
	specs := []cache.LevelSpec{
		{Name: "L1", Config: cache.Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4}},
		{Name: "L2", Config: cache.Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8}},
		{Name: "L3", Config: cache.Config{SizeBytes: 512 << 10, LineBytes: 64, Ways: 0}},
	}
	for name, mk := range generators(t) {
		rd := exactLineHistogram(t, mk)
		sims, err := cache.SimulateHierarchy(mk(), specs)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := PredictLevels(rd, specs, 64)
		if err != nil {
			t.Fatal(err)
		}
		locals := pred.Locals()
		arrival := 1.0
		for i := range specs {
			if arrival >= 0.02 && math.Abs(locals[i]-sims[i]) > TolHierarchy {
				t.Errorf("%s %s: predicted local %.4f vs simulated %.4f (tol %v)",
					name, specs[i].Name, locals[i], sims[i], TolHierarchy)
			}
			arrival *= sims[i]
		}
		// Global ratios must be monotone non-increasing down the levels.
		for i := 1; i < len(pred.Levels); i++ {
			if pred.Levels[i].Global > pred.Levels[i-1].Global+1e-12 {
				t.Errorf("%s: global ratios not monotone: %v", name, pred.Levels)
			}
		}
	}
}

// TestTransformMissInclusiveIdentity checks the fully associative
// exactness of the hierarchy recursion: the predicted L2 local miss
// ratio equals the inclusive closed form
// (W(d >= C2) + cold) / (W(d >= C1) + cold) evaluated on the same
// histogram — the identity the repo's reference PredictHierarchy is
// validated on — up to sub-bucket re-bucketing blur.
func TestTransformMissInclusiveIdentity(t *testing.T) {
	rd := exactLineHistogram(t, func() trace.Reader {
		return trace.ZipfAccess(21, 0, 1<<14, 0.7, testN)
	})
	const c1, c2 = 64, 512 // bucket-aligned thresholds
	specs := []cache.LevelSpec{
		{Name: "L1", Config: cache.Config{SizeBytes: c1 * 64, LineBytes: 64, Ways: 0}},
		{Name: "L2", Config: cache.Config{SizeBytes: c2 * 64, LineBytes: 64, Ways: 0}},
	}
	pred, err := PredictLevels(rd, specs, 64)
	if err != nil {
		t.Fatal(err)
	}
	outer := rd.FractionAbove(c2)
	inner := rd.FractionAbove(c1)
	if inner == 0 {
		t.Fatal("degenerate test histogram")
	}
	want := outer / inner
	if got := pred.Levels[1].Local; math.Abs(got-want) > 0.05 {
		t.Errorf("L2 local = %.4f, want inclusive identity %.4f", got, want)
	}
	if got, want := pred.Levels[0].Local, rd.FractionAbove(c1); math.Abs(got-want) > 1e-12 {
		t.Errorf("L1 local = %v, want FractionAbove = %v", got, want)
	}
}

// TestFromFootprintSmooth checks the footprint-based curve agrees with
// the histogram-based one at matched capacities and reaches the
// cold-miss floor at huge sizes.
func TestFromFootprintSmooth(t *testing.T) {
	mk := func() trace.Reader { return trace.ZipfAccess(17, 0, 1<<14, 1.0, testN) }
	gt, err := exact.Measure(mk(), mem.LineGranularity)
	if err != nil {
		t.Fatal(err)
	}
	rd := gt.ReuseDistance()
	times := gt.ReuseTime()
	var samples []uint64
	var weights []float64
	for b := 0; b < times.NumBuckets(); b++ {
		if w := times.Weight(b); w > 0 {
			samples = append(samples, histogram.BucketLow(b))
			weights = append(weights, w)
		}
	}
	est := footprint.NewWeightedEstimator(samples, weights, times.Cold(), testN)
	fc := FromFootprint(est, 64, Sweep{MaxLines: 1 << 22})
	checkCurve(t, "footprint", fc)
	hc := FromHistogram(rd, 64, Sweep{})
	for _, lines := range []uint64{64, 256, 1024} {
		if d := math.Abs(fc.At(lines) - hc.At(lines)); d > 0.25 {
			t.Errorf("@%d lines: footprint %.4f vs histogram %.4f differ by %.4f",
				lines, fc.At(lines), hc.At(lines), d)
		}
	}
	// At capacities beyond the footprint, only cold misses remain.
	coldFloor := rd.Cold() / rd.Total()
	if last := fc.Points[len(fc.Points)-1].MissRatio; last > coldFloor+0.05 {
		t.Errorf("saturated curve ends at %.4f, want near cold floor %.4f", last, coldFloor)
	}
}

func TestParseSpec(t *testing.T) {
	base := []cache.LevelSpec{
		{Name: "L1", Config: cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}},
		{Name: "L2", Config: cache.Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16}},
	}
	got, err := ParseSpec("l2.size=2x", base)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Config.SizeBytes != 2<<20 {
		t.Errorf("l2.size=2x -> %d", got[1].Config.SizeBytes)
	}
	if base[1].Config.SizeBytes != 1<<20 {
		t.Error("ParseSpec mutated the base hierarchy")
	}
	got, err = ParseSpec(" L1.ways=4 , l2.size=256KiB ", base)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Config.Ways != 4 || got[1].Config.SizeBytes != 256<<10 {
		t.Errorf("multi-clause spec -> %+v", got)
	}
	got, err = ParseSpec("l2.ways=full", base)
	if err != nil || got[1].Config.Ways != 0 {
		t.Errorf("ways=full -> %+v, %v", got, err)
	}
	got, err = ParseSpec("l1.size=0.5x,l1.line=128", base)
	if err != nil || got[0].Config.SizeBytes != 16<<10 || got[0].Config.LineBytes != 128 {
		t.Errorf("fractional size + line -> %+v, %v", got, err)
	}

	bad := []string{
		"",
		"l2.size",                      // no value
		"size=2x",                      // no level
		"l9.size=2x",                   // unknown level
		"l2.banks=4",                   // unknown parameter
		"l2.size=big",                  // unparsable size
		"l2.size=-1x",                  // negative multiplier
		"l2.ways=-3",                   // negative ways
		"l2.ways=nope",                 // unparsable ways
		"l2.line=0",                    // zero line
		"l2.line=48",                   // not a power of two (Validate)
		"l1.ways=7",                    // ways do not divide lines (Validate)
		"l2.size=2x,l2.size",           // valid clause then malformed
		"l2.size=99999999999999999999", // does not fit uint64
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, base); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
}

func TestWhatIfReport(t *testing.T) {
	rd := exactLineHistogram(t, func() trace.Reader {
		return trace.ZipfAccess(31, 0, 1<<15, 0.9, testN)
	})
	base := []cache.LevelSpec{
		{Name: "L1", Config: cache.Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4}},
		{Name: "L2", Config: cache.Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 0}},
	}
	rep, err := WhatIf(rd, 64, base, "l2.size=2x", Sweep{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Modified.Levels[1].SizeBytes != 128<<10 {
		t.Errorf("modified L2 size = %d", rep.Modified.Levels[1].SizeBytes)
	}
	// Doubling a fully associative L2 cannot increase its global misses.
	if rep.Modified.Levels[1].Global > rep.Base.Levels[1].Global+1e-9 {
		t.Errorf("doubling L2 raised global miss ratio: %v -> %v",
			rep.Base.Levels[1].Global, rep.Modified.Levels[1].Global)
	}
	checkCurve(t, "whatif", rep.Curve)
	out := rep.String()
	if !strings.Contains(out, "what-if: l2.size=2x") || !strings.Contains(out, "L2") {
		t.Errorf("report text missing fields:\n%s", out)
	}
	if _, err := WhatIf(rd, 64, base, "l2.size=", Sweep{}); err == nil {
		t.Error("malformed spec accepted by WhatIf")
	}
}

func TestAMAT(t *testing.T) {
	p := &HierarchyPrediction{Levels: []LevelPrediction{
		{Name: "L1", Local: 0.5},
		{Name: "L2", Local: 0.2},
	}}
	got, err := p.AMAT([]float64{1, 10}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 0.5*(10+0.2*100)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AMAT = %v, want %v", got, want)
	}
	if _, err := p.AMAT([]float64{1}, 100); err == nil {
		t.Error("AMAT accepted mismatched latency vector")
	}
}

func TestPredictCacheEdgeCases(t *testing.T) {
	empty := histogram.New()
	mr, err := PredictCache(empty, cache.Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2}, 64)
	if err != nil || mr != 0 {
		t.Errorf("empty histogram -> %v, %v", mr, err)
	}
	if _, err := PredictCache(empty, cache.Config{SizeBytes: 100, LineBytes: 48}, 64); err == nil {
		t.Error("invalid config accepted")
	}
	// All-cold histogram misses everywhere.
	cold := histogram.New()
	cold.Add(histogram.Infinite, 10)
	mr, err = PredictCache(cold, cache.Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 8}, 64)
	if err != nil || mr != 1 {
		t.Errorf("all-cold -> %v, %v, want 1", mr, err)
	}
	if _, err := PredictLevels(cold, nil, 64); err == nil {
		t.Error("empty hierarchy accepted")
	}
}
