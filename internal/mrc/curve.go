// Package mrc is the cache-analysis layer of the RDX reproduction: it
// converts reuse-distance profiles — local results, RDXS checkpoints or
// live rdxd session snapshots — into full miss-ratio curves and cache
// what-if answers, without touching the profiled program again.
//
// Three models stack up:
//
//   - Miss-ratio curves over cache size from the stack-distance identity
//     (an access to a fully associative LRU cache of C blocks misses iff
//     its reuse distance is >= C), sampled over a configurable log-spaced
//     size sweep. A footprint-based variant derives the curve from the
//     fitted average-footprint function instead (mr(c) is the footprint
//     derivative at the window that fills c blocks — the higher-order
//     theory of locality), which stays smooth where a coarse log-bucketed
//     histogram produces stair-steps.
//
//   - Set-associative caches (sets/ways/line size): the distinct blocks
//     of a reuse window spread over the sets, so the per-set reuse
//     distance of an access with global distance D is modeled as
//     Poisson(D/S) and the access misses an A-way set when that per-set
//     distance reaches A. This is the classical per-set distance
//     correction (cf. the k0nze ReuseDistanceAnalyzer, which measures
//     per-set distances directly).
//
//   - Multi-level hierarchies (L1 -> L2 -> L3): each outer level sees
//     only the misses of the level above, so its arrival stream has a
//     transformed reuse-distance histogram — each distance's weight
//     shrinks by the inner level's hit probability while the distance
//     itself carries through (most distinct blocks in a reuse window
//     miss the inner level at least once), in the spirit of Ling et
//     al.'s L2 reuse-distance histogram modeling. Applying the
//     single-level model to the transformed histogram per level yields
//     local and global miss ratios for the whole hierarchy.
//
// Every prediction is differentially tested against the reference
// simulators in internal/cache within the committed tolerances below.
package mrc

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/footprint"
	"repro/internal/histogram"
)

// Committed differential tolerances: model predictions are held within
// these absolute miss-ratio distances of the reference simulation by the
// tests in this package and the rdexper -mrc-check gate in
// scripts/check.sh. Log-bucketed histograms blur capacities inside a
// bucket, so the tolerances are loosest where associativity and
// filtering stack approximations.
const (
	// TolFullyAssoc bounds |predicted - simulated| for single
	// fully associative LRU caches (the stack-distance identity; error
	// comes only from histogram bucketing).
	TolFullyAssoc = 0.06
	// TolSetAssoc bounds the set-associative single-cache model.
	TolSetAssoc = 0.12
	// TolHierarchy bounds each level's local miss ratio in a multi-level
	// prediction against cache.SimulateHierarchy.
	TolHierarchy = 0.15
)

// Point is one sampled cache size on a miss-ratio curve.
type Point struct {
	// Lines is the capacity in measurement-granularity blocks.
	Lines uint64 `json:"lines"`
	// Bytes is the capacity in bytes (Lines x the curve's BlockBytes).
	Bytes uint64 `json:"bytes"`
	// MissRatio is the predicted miss ratio at this capacity, in [0,1].
	MissRatio float64 `json:"miss_ratio"`
}

// Curve is a miss-ratio curve: predicted miss ratio of a fully
// associative LRU cache as a function of capacity, sampled at
// log-spaced sizes. Points are strictly increasing in Lines and the
// ratios are monotone non-increasing and bounded in [0,1] by
// construction.
type Curve struct {
	// BlockBytes is the measurement-granularity block size the capacities
	// are expressed in (1 = byte, 8 = word, 64 = cache line).
	BlockBytes uint64 `json:"block_bytes"`
	// Points is the sampled curve, ordered by increasing capacity.
	Points []Point `json:"points"`
}

// Sweep configures the cache-size sweep of a curve.
type Sweep struct {
	// MinLines and MaxLines bound the capacity range in blocks
	// (inclusive). Zero values derive the range from the source: 1 block
	// up to one doubling past the largest observed distance.
	MinLines uint64 `json:"min_lines,omitempty"`
	MaxLines uint64 `json:"max_lines,omitempty"`
	// PointsPerDoubling is how many sizes are sampled per octave
	// (default 2).
	PointsPerDoubling int `json:"points_per_doubling,omitempty"`
}

// fill applies defaults, deriving the range from the largest finite
// bucket of the source histogram (maxBucket; pass <0 when no histogram
// bounds the sweep).
func (s Sweep) fill(maxBucket int) Sweep {
	if s.PointsPerDoubling <= 0 {
		s.PointsPerDoubling = 2
	}
	if s.MinLines == 0 {
		s.MinLines = 1
	}
	if s.MaxLines == 0 {
		top := maxBucket + 1
		if top < 4 {
			top = 4
		}
		if top > 40 {
			top = 40
		}
		s.MaxLines = 1 << uint(top)
	}
	if s.MaxLines < s.MinLines {
		s.MaxLines = s.MinLines
	}
	return s
}

// sizes materializes the log-spaced capacity grid.
func (s Sweep) sizes() []uint64 {
	var out []uint64
	last := uint64(0)
	for oct := 0; ; oct++ {
		base := float64(s.MinLines) * math.Pow(2, float64(oct))
		if uint64(base) > s.MaxLines {
			break
		}
		for i := 0; i < s.PointsPerDoubling; i++ {
			v := uint64(math.Round(base * math.Pow(2, float64(i)/float64(s.PointsPerDoubling))))
			if v < 1 {
				v = 1
			}
			if v > s.MaxLines {
				break
			}
			if v != last {
				out = append(out, v)
				last = v
			}
		}
	}
	if last < s.MaxLines {
		out = append(out, s.MaxLines)
	}
	return out
}

// StackMissRatio is the stack-distance identity evaluated at one
// capacity: the predicted miss ratio of a fully associative LRU cache of
// `lines` measurement blocks is the fraction of accesses with reuse
// distance >= lines (cold accesses always miss). It is the single-point
// primitive every curve in this package is built from, and is
// bit-identical to the legacy cache.PredictMissRatio.
func StackMissRatio(rd *histogram.Histogram, lines uint64) float64 {
	if lines == 0 {
		return 1
	}
	return rd.FractionAbove(lines)
}

// FromHistogram builds the miss-ratio curve of a reuse-distance
// histogram via the stack-distance identity, sampled over the sweep.
func FromHistogram(rd *histogram.Histogram, blockBytes uint64, sweep Sweep) *Curve {
	sweep = sweep.fill(rd.NumBuckets())
	c := &Curve{BlockBytes: blockBytes}
	for _, lines := range sweep.sizes() {
		c.appendClamped(lines, StackMissRatio(rd, lines))
	}
	return c
}

// FromFootprint builds the miss-ratio curve from a fitted
// average-footprint function: for capacity c, find the window length w
// with fp(w) = c, and take the miss ratio as fp's derivative there (the
// fraction of reuse times exceeding w). Because fp interpolates between
// observed reuse times, the curve stays smooth even when the backing
// histogram is coarse. Capacities beyond the program's footprint predict
// the cold-miss floor.
func FromFootprint(est *footprint.Estimator, blockBytes uint64, sweep Sweep) *Curve {
	sweep = sweep.fill(40)
	c := &Curve{BlockBytes: blockBytes}
	for _, lines := range sweep.sizes() {
		w, ok := est.InverseFootprint(float64(lines))
		mr := 0.0
		if ok {
			mr = est.TailFraction(w)
		}
		c.appendClamped(lines, mr)
		if !ok {
			break // footprint saturated: the curve is flat from here on
		}
	}
	return c
}

// appendClamped appends a point, clamping to [0,1] and enforcing
// monotone non-increasing ratios.
func (c *Curve) appendClamped(lines uint64, mr float64) {
	if mr < 0 || math.IsNaN(mr) {
		mr = 0
	}
	if mr > 1 {
		mr = 1
	}
	if n := len(c.Points); n > 0 && mr > c.Points[n-1].MissRatio {
		mr = c.Points[n-1].MissRatio
	}
	c.Points = append(c.Points, Point{Lines: lines, Bytes: lines * c.BlockBytes, MissRatio: mr})
}

// At evaluates the curve at an arbitrary capacity in blocks,
// interpolating linearly in log2(capacity) between sampled points and
// clamping beyond the ends.
func (c *Curve) At(lines uint64) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	if lines == 0 {
		return 1
	}
	if lines <= c.Points[0].Lines {
		return c.Points[0].MissRatio
	}
	last := c.Points[len(c.Points)-1]
	if lines >= last.Lines {
		return last.MissRatio
	}
	for i := 1; i < len(c.Points); i++ {
		if lines > c.Points[i].Lines {
			continue
		}
		a, b := c.Points[i-1], c.Points[i]
		la, lb, lx := math.Log2(float64(a.Lines)), math.Log2(float64(b.Lines)), math.Log2(float64(lines))
		t := 0.0
		if lb > la {
			t = (lx - la) / (lb - la)
		}
		return a.MissRatio + t*(b.MissRatio-a.MissRatio)
	}
	return last.MissRatio
}

// String renders the curve as an aligned text table with bars.
func (c *Curve) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%14s %14s %8s\n", "capacity", "bytes", "miss%")
	for _, p := range c.Points {
		bar := strings.Repeat("#", int(p.MissRatio*40))
		fmt.Fprintf(&sb, "%14d %14d %7.2f%% %s\n", p.Lines, p.Bytes, 100*p.MissRatio, bar)
	}
	return sb.String()
}
