package mrc

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/histogram"
)

// LevelPrediction is one level of a hierarchy prediction.
type LevelPrediction struct {
	// Name is the level name from its cache.LevelSpec.
	Name string `json:"name"`
	// SizeBytes, LineBytes, Ways echo the level's configuration.
	SizeBytes uint64 `json:"size_bytes"`
	LineBytes uint64 `json:"line_bytes"`
	Ways      int    `json:"ways"`
	// Local is the level's local miss ratio: the fraction of accesses
	// reaching this level that miss it.
	Local float64 `json:"local_miss_ratio"`
	// Global is the fraction of all accesses that miss this level and
	// every level above it (the product of local ratios so far).
	Global float64 `json:"global_miss_ratio"`
}

// HierarchyPrediction is a full multi-level miss-ratio prediction.
type HierarchyPrediction struct {
	// BlockBytes is the measurement granularity of the source histogram.
	BlockBytes uint64 `json:"block_bytes"`
	// Levels is ordered from the innermost level outward.
	Levels []LevelPrediction `json:"levels"`
}

// TransformMiss derives the reuse-distance histogram of the miss stream
// a cache level passes to the level below, per the L2-histogram modeling
// of Ling et al.: an access with reuse distance d reappears in the miss
// stream with probability pmiss(d) (the level filtered out its hits),
// while its distance carries through unchanged. The distance of a miss
// in the filtered stream is the number of distinct gap blocks that also
// missed the level at least once; since a block's first access inside
// the gap almost always misses (its own previous use lies outside the
// gap), that count stays ~d — only the few blocks the level retains
// across the whole gap (at most its capacity, usually far fewer) drop
// out. Keeping d is exact for streaming patterns, an upper bound in
// general, and for fully associative levels reproduces the inclusive
// identity the repo's reference predictor is validated on:
// local_2 = (W(d >= max(C1,C2)) + cold) / (W(d >= C1) + cold).
// Cold accesses miss every level and carry through unchanged.
func TransformMiss(rd *histogram.Histogram, cfg cache.Config, blockBytes uint64) *histogram.Histogram {
	if blockBytes == 0 {
		blockBytes = 1
	}
	out := histogram.New()
	eachBucket(rd, func(d uint64, w float64) {
		pm := pMiss(d, cfg, blockBytes)
		if pm <= 0 {
			return
		}
		out.Add(d, w*pm)
	})
	if cold := rd.Cold(); cold > 0 {
		out.Add(histogram.Infinite, cold)
	}
	return out
}

// pMiss is the probability that one access with reuse distance d (in
// measurement blocks) misses the cache — the per-distance kernel shared
// by PredictCache and TransformMiss.
func pMiss(d uint64, cfg cache.Config, blockBytes uint64) float64 {
	if cfg.Ways == 0 {
		if d >= faCapacityBlocks(cfg, blockBytes) {
			return 1
		}
		return 0
	}
	return setAssocPMiss(d, cfg, blockBytes)
}

// PredictLevels predicts local and global miss ratios for a multi-level
// hierarchy from one reuse-distance histogram measured at blockBytes
// granularity: each level is predicted by the single-cache model on its
// arrival histogram, then TransformMiss produces the next level's
// arrival stream. Levels are ordered innermost first, matching
// cache.SimulateHierarchy.
func PredictLevels(rd *histogram.Histogram, specs []cache.LevelSpec, blockBytes uint64) (*HierarchyPrediction, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("mrc: hierarchy with no levels")
	}
	if blockBytes == 0 {
		blockBytes = 1
	}
	p := &HierarchyPrediction{BlockBytes: blockBytes}
	arrival := rd
	reach := 1.0
	for i, s := range specs {
		local, err := PredictCache(arrival, s.Config, blockBytes)
		if err != nil {
			return nil, fmt.Errorf("mrc: level %s: %w", s.Name, err)
		}
		global := reach * local
		p.Levels = append(p.Levels, LevelPrediction{
			Name:      s.Name,
			SizeBytes: s.Config.SizeBytes,
			LineBytes: s.Config.LineBytes,
			Ways:      s.Config.Ways,
			Local:     local,
			Global:    global,
		})
		reach = global
		if i < len(specs)-1 {
			arrival = TransformMiss(arrival, s.Config, blockBytes)
		}
	}
	return p, nil
}

// Locals returns the per-level local miss ratios, in level order —
// directly comparable to cache.SimulateHierarchy's result.
func (p *HierarchyPrediction) Locals() []float64 {
	out := make([]float64, len(p.Levels))
	for i, l := range p.Levels {
		out[i] = l.Local
	}
	return out
}

// AMAT computes the average memory access time implied by the
// prediction, given each level's hit latency and the memory latency
// (arbitrary units): AMAT = lat_1 + local_1*(lat_2 + local_2*(... +
// local_n*memLatency)).
func (p *HierarchyPrediction) AMAT(levelLatency []float64, memLatency float64) (float64, error) {
	if len(levelLatency) != len(p.Levels) {
		return 0, fmt.Errorf("mrc: %d latencies for %d levels", len(levelLatency), len(p.Levels))
	}
	cost := memLatency
	for i := len(p.Levels) - 1; i >= 0; i-- {
		cost = levelLatency[i] + p.Levels[i].Local*cost
	}
	return cost, nil
}

// String renders the prediction as an aligned text table.
func (p *HierarchyPrediction) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %12s %6s %6s %10s %10s\n", "level", "size", "ways", "line", "local%", "global%")
	for _, l := range p.Levels {
		ways := fmt.Sprintf("%d", l.Ways)
		if l.Ways == 0 {
			ways = "full"
		}
		fmt.Fprintf(&sb, "%-6s %12d %6s %6d %9.2f%% %9.2f%%\n",
			l.Name, l.SizeBytes, ways, l.LineBytes, 100*l.Local, 100*l.Global)
	}
	return sb.String()
}
