package mrc

import (
	"math"

	"repro/internal/cache"
	"repro/internal/histogram"
)

// subPoints is how many uniformly spaced representative distances are
// evaluated per histogram bucket when applying the set-associative model
// (log2 buckets are wide at the top; point-sampling the midpoint alone
// makes predictions jump a whole bucket at a time).
const subPoints = 4

// PredictCache predicts the miss ratio of a single set-associative LRU
// cache from a reuse-distance histogram measured at blockBytes
// granularity.
//
// Fully associative configurations (Ways == 0) use the exact
// stack-distance identity at the capacity SizeBytes/blockBytes. For
// set-associative caches, an access with global reuse distance D (in
// cache lines) competes only with the lines that map to its own set;
// with S sets those are modeled as Poisson(D/S) distributed, and the
// access misses an A-way set when at least A distinct competing lines
// intervened — the per-set distance correction. One set (S == 1)
// degenerates to the deterministic threshold D >= A, which reproduces
// the fully associative identity.
func PredictCache(rd *histogram.Histogram, cfg cache.Config, blockBytes uint64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if blockBytes == 0 {
		blockBytes = 1
	}
	total := rd.Total()
	if total == 0 {
		return 0, nil
	}
	if cfg.Ways == 0 {
		return StackMissRatio(rd, faCapacityBlocks(cfg, blockBytes)), nil
	}
	missW := rd.Cold() // cold accesses miss every cache
	eachBucket(rd, func(d uint64, w float64) {
		missW += w * setAssocPMiss(d, cfg, blockBytes)
	})
	return missW / total, nil
}

// faCapacityBlocks is the fully associative capacity in measurement
// blocks (at least 1 so tiny caches still admit back-to-back reuses).
func faCapacityBlocks(cfg cache.Config, blockBytes uint64) uint64 {
	c := cfg.SizeBytes / blockBytes
	if c == 0 {
		c = 1
	}
	return c
}

// setAssocPMiss is the probability that an access with reuse distance d
// (in measurement blocks) misses the given set-associative cache.
func setAssocPMiss(d uint64, cfg cache.Config, blockBytes uint64) float64 {
	// Rescale the distance from measurement blocks to cache lines:
	// distinct blocks pack (or spread) into lines proportionally.
	dl := float64(d) * float64(blockBytes) / float64(cfg.LineBytes)
	ways := uint64(cfg.Ways)
	sets := cfg.Lines() / ways
	if sets <= 1 {
		if dl >= float64(ways) {
			return 1
		}
		return 0
	}
	// Per-set intervening distance ~ Poisson(dl/sets); miss when it
	// reaches the associativity. Sum the pmf iteratively; for large
	// lambda exp(-lambda) underflows to 0 and the tail is correctly 1.
	lambda := dl / float64(sets)
	p := math.Exp(-lambda)
	cdf := 0.0
	for k := uint64(0); k < ways; k++ {
		cdf += p
		p *= lambda / float64(k+1)
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf
}

// eachBucket visits subPoints uniformly spaced representative distances
// per non-empty finite bucket, splitting the bucket's weight evenly —
// the quadrature every model in this package integrates histograms with.
func eachBucket(rd *histogram.Histogram, f func(d uint64, w float64)) {
	for b := 0; b < rd.NumBuckets(); b++ {
		w := rd.Weight(b)
		if w <= 0 {
			continue
		}
		if b == 0 {
			f(0, w)
			continue
		}
		lo := histogram.BucketLow(b)
		span := histogram.BucketHigh(b) - lo + 1
		if span < subPoints {
			// Narrow buckets ([1,1], [2,3]): one point per value.
			wv := w / float64(span)
			for v := uint64(0); v < span; v++ {
				f(lo+v, wv)
			}
			continue
		}
		wv := w / subPoints
		for i := uint64(0); i < subPoints; i++ {
			// Midpoint of the i-th of subPoints equal sub-ranges.
			f(lo+(2*i+1)*span/(2*subPoints), wv)
		}
	}
}
