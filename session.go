package rdx

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/wire"
)

// Pool vocabulary, re-exported so callers configure multi-backend
// profiling without importing internal packages.
type (
	// Backend identifies one rdxd daemon: profiling address plus
	// optional admin (health/metrics) address.
	Backend = pool.Backend
	// PoolOptions tunes the multi-backend dispatcher: per-backend
	// in-flight bound, health-probe cadence, failover budget.
	PoolOptions = pool.Options
	// PoolStats counts a pool's dispatch and failover events.
	PoolStats = pool.Stats
)

// ParseBackends parses a comma-separated backend list, each element
// "addr" or "addr=adminaddr" — the format cmd/rdx's -remote flag and
// WithRemote accept.
func ParseBackends(spec string) ([]Backend, error) { return pool.ParseBackends(spec) }

// Session is the configured entry point of the API: construct one with
// New and the With* options, then Profile or ProfileThreads under a
// context. The zero configuration profiles locally under DefaultConfig
// and DefaultCosts; options layer remote execution, fault tolerance and
// multi-backend sharding on top without changing the results — every
// execution strategy returns bit-identical profiles for the same stream
// and config.
//
//	res, err := rdx.New().Profile(ctx, stream)                    // local
//	res, err := rdx.New(rdx.WithRemote("host:9090")).Profile(ctx, stream)
//	m, err := rdx.New(
//	    rdx.WithRemote("a:9090", "b:9090", "c:9090"),
//	    rdx.WithRetry(rdx.RetryPolicy{}),
//	).ProfileThreads(ctx, streams)                                // sharded pool
//
// A Session is immutable after New and safe for concurrent use; each
// Profile/ProfileThreads call is an independent run.
type Session struct {
	cfg        Config
	costs      Costs
	remotes    []Backend
	retry      *RetryPolicy
	remoteOpts RemoteOptions
	workers    int
	poolOpts   PoolOptions
	poolSet    bool
	window     *WindowOptions
	err        error
}

// Option configures a Session at New time.
type Option func(*Session)

// New builds a Session from options. Without options it profiles
// locally, in process, under DefaultConfig and DefaultCosts.
func New(opts ...Option) *Session {
	s := &Session{cfg: DefaultConfig(), costs: DefaultCosts()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// WithConfig sets the profiler configuration (sampling period,
// watchpoints, replacement policy, ...).
func WithConfig(cfg Config) Option { return func(s *Session) { s.cfg = cfg } }

// WithCosts sets the cycle-cost table used for modelled overhead
// accounting (local profiling only; remote daemons apply their own).
func WithCosts(costs Costs) Option { return func(s *Session) { s.costs = costs } }

// WithRemote directs profiling to rdxd daemons instead of running in
// process. Each addr is "host:port" or "host:port=adminhost:port" (the
// admin listener enables health probes and load-aware routing). One
// address profiles against that daemon; several shard ProfileThreads
// streams across the fleet with health-checked failover.
func WithRemote(addrs ...string) Option {
	return func(s *Session) {
		for _, a := range addrs {
			bs, err := pool.ParseBackends(a)
			if err != nil {
				s.err = err
				return
			}
			s.remotes = append(s.remotes, bs...)
		}
	}
}

// WithRetry makes remote sessions fault tolerant: transparent
// reconnection with backoff, checkpoint/resume, idempotent batch
// replay. The zero RetryPolicy selects sane defaults.
func WithRetry(policy RetryPolicy) Option {
	return func(s *Session) { s.retry = &policy }
}

// WithRemoteOptions tunes remote streaming (batch size, live-snapshot
// cadence and callback).
func WithRemoteOptions(opts RemoteOptions) Option {
	return func(s *Session) { s.remoteOpts = opts }
}

// WithWorkers bounds how many streams a local ProfileThreads simulates
// concurrently (n <= 0 selects GOMAXPROCS). Results are independent of
// the worker count.
func WithWorkers(n int) Option { return func(s *Session) { s.workers = n } }

// WithPool tunes multi-backend dispatch (per-backend in-flight bound,
// probe cadence, failover budget) and forces pool dispatch even for a
// single backend. The options' zero values select the pool defaults.
func WithPool(opts PoolOptions) Option {
	return func(s *Session) { s.poolOpts = opts; s.poolSet = true }
}

// newPool builds the dispatcher a remote multi-backend run uses,
// folding the session's retry policy into the pool options.
func (s *Session) newPool() (*pool.Pool, error) {
	opts := s.poolOpts
	if s.retry != nil {
		opts.Retry = *s.retry
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = s.remoteOpts.BatchSize
	}
	return pool.New(s.remotes, opts)
}

// Profile measures the reuse-distance profile of one access stream
// under the session's configuration — locally, on a remote daemon, or
// through the backend pool, all bit-identical for the same stream and
// config. The context cancels the run at batch granularity.
func (s *Session) Profile(ctx context.Context, r Reader) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	switch {
	case len(s.remotes) == 0:
		p, err := core.NewProfiler(s.cfg)
		if err != nil {
			return nil, err
		}
		res, err := p.RunContext(ctx, r, s.costs)
		if err != nil {
			return nil, fmt.Errorf("rdx: profiling: %w", err)
		}
		return res, nil
	case len(s.remotes) == 1 && !s.poolSet:
		var (
			wres *RemoteResult
			err  error
		)
		if s.retry != nil {
			c := wire.NewReconnectingClient(s.remotes[0].Addr, s.cfg, *s.retry)
			defer c.Close()
			wres, err = c.Profile(ctx, r, s.remoteOpts)
		} else {
			var c *wire.Client
			c, err = wire.DialContext(ctx, s.remotes[0].Addr)
			if err != nil {
				return nil, err
			}
			defer c.Close()
			wres, err = c.Profile(r, s.cfg, s.remoteOpts)
		}
		if err != nil {
			return nil, fmt.Errorf("rdx: remote profiling: %w", err)
		}
		return wire.ToCore(wres), nil
	default:
		p, err := s.newPool()
		if err != nil {
			return nil, err
		}
		defer p.Close()
		return p.Profile(ctx, r, s.cfg)
	}
}

// ProfileThreads profiles each stream as one thread of a multithreaded
// program — per-thread PMU and debug-register contexts, merged
// program-level histograms and attribution. Locally the streams run on
// a bounded worker pool (WithWorkers); with remotes they shard across
// the backend fleet with least-loaded routing and failover. Either way
// the MultiResult is bit-identical for the same streams and config.
func (s *Session) ProfileThreads(ctx context.Context, streams []Reader) (*MultiResult, error) {
	if s.err != nil {
		return nil, s.err
	}
	if len(s.remotes) == 0 {
		return core.ProfileThreadsPoolContext(ctx, streams, s.cfg, s.costs, s.workers)
	}
	p, err := s.newPool()
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return p.ProfileThreads(ctx, streams, s.cfg)
}

// RemoteToResult converts a wire-form profile back to the in-memory
// Result — the inverse of ResultToRemote, so remotely produced profiles
// are fully interchangeable with local ones (Footprint is rebuilt at
// histogram resolution; everything else round-trips bit-identically).
//
// Deprecated: the Session API returns in-memory Results directly, and
// serialized reports now travel in the versioned report.Schema envelope
// (see `rdx -json` and `rdx diff`), so callers rarely hold a bare
// RemoteResult anymore. The wrapper is kept bit-identical for the ones
// that do.
func RemoteToResult(res *RemoteResult) *Result { return wire.ToCore(res) }
